package bench

// This file implements the -procs scaling mode: the engine matrix
// re-run at several GOMAXPROCS settings over one preprocessed graph,
// reporting per-engine speedup columns. It exists to answer the
// roadmap's standing question — does the parallel machinery actually
// win as cores are added, and where does it stop winning — with one
// command instead of N manually-varied runs.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	rs "radiusstep"
)

// ScalingConfig describes one scaling run: the engine-matrix workload
// plus the GOMAXPROCS values to sweep.
type ScalingConfig struct {
	Gen     string
	N       int
	Weights int
	Rho     int
	Seed    uint64
	Trials  int
	Engines []string // empty means all five
	Procs   []int    // GOMAXPROCS values, e.g. 1,2,4,8
}

// ScalingCell is one (engine, procs) measurement. Speedup is relative
// to the same engine at the sweep's first procs value, so with the
// conventional 1,2,4,... sweep it reads directly as parallel speedup.
// Steps and QuotaAdjustments come from the cell's last timed solve, so
// the adaptive-ρ step accounting is auditable per procs setting.
type ScalingCell struct {
	Procs            int     `json:"procs"`
	P50Micros        float64 `json:"p50Micros"`
	Speedup          float64 `json:"speedup"`
	Steps            int     `json:"steps,omitempty"`
	QuotaAdjustments int     `json:"quotaAdjustments,omitempty"`
}

// ScalingRow is one engine's sweep across the procs values.
type ScalingRow struct {
	Engine string        `json:"engine"`
	Cells  []ScalingCell `json:"cells"`
}

// ScalingReport is the JSON envelope emitted by RunScaling.
type ScalingReport struct {
	Graph    string       `json:"graph"`
	N        int          `json:"n"`
	Seed     uint64       `json:"seed"`
	Weights  int          `json:"weights"`
	Vertices int          `json:"vertices"`
	Edges    int          `json:"edges"`
	Rho      int          `json:"rho"`
	Trials   int          `json:"trials"`
	Procs    []int        `json:"procs"`
	Rows     []ScalingRow `json:"rows"`
}

// MeasureScaling builds one preprocessed solver and times every
// requested engine at every requested GOMAXPROCS value. The solver —
// graph, radii, and all preprocessing — is shared across the sweep so
// the cells differ only in available parallelism, not in cache or
// preprocessing state. The workspace pool, however, is NOT shared
// between procs settings: workspace buffers are grow-only and the
// per-worker relax buffers are sized by the worker count, so without a
// reset a procs=1 row measured after a procs=8 row would run on
// 8-worker-sized buffers (different footprint, different cache
// behavior). Each setting therefore starts from a fresh pool, re-warmed
// by one untimed solve per engine. GOMAXPROCS is restored before
// returning.
func MeasureScaling(cfg ScalingConfig) (*ScalingReport, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 9
	}
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	if len(cfg.Procs) == 0 {
		return nil, fmt.Errorf("bench: scaling mode needs at least one procs value")
	}
	for _, p := range cfg.Procs {
		if p < 1 {
			return nil, fmt.Errorf("bench: procs value %d < 1", p)
		}
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()

	report := &ScalingReport{
		Graph:    cfg.Gen,
		N:        cfg.N,
		Seed:     cfg.Seed,
		Weights:  cfg.Weights,
		Vertices: n,
		Edges:    g.NumEdges(),
		Rho:      cfg.Rho,
		Trials:   cfg.Trials,
		Procs:    cfg.Procs,
	}
	for _, name := range engines {
		report.Rows = append(report.Rows, ScalingRow{Engine: name})
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		// Fresh workspace pool per setting (see the function comment):
		// buffers sized under the previous GOMAXPROCS must not leak into
		// this setting's steady state.
		solver.ResetWorkspaces()
		for ri, name := range engines {
			eng, err := rs.ParseEngine(name)
			if err != nil {
				return nil, err
			}
			// Warm the workspace pool (and, at higher procs, the worker
			// pool) outside the timed loop.
			if _, _, err = solver.DistancesWith(0, eng); err != nil {
				return nil, fmt.Errorf("engine %s at procs=%d: %v", name, procs, err)
			}
			durs := make([]float64, cfg.Trials)
			var last rs.Stats
			for i := 0; i < cfg.Trials; i++ {
				src := rs.Vertex((i * 7919) % n)
				t0 := time.Now()
				_, st, err := solver.DistancesWith(src, eng)
				if err != nil {
					return nil, fmt.Errorf("engine %s at procs=%d: %v", name, procs, err)
				}
				durs[i] = float64(time.Since(t0).Microseconds())
				last = st
			}
			sort.Float64s(durs)
			p50 := durs[len(durs)/2]
			cell := ScalingCell{
				Procs: procs, P50Micros: p50,
				Steps: last.Steps, QuotaAdjustments: last.QuotaAdjustments,
			}
			row := &report.Rows[ri]
			if len(row.Cells) > 0 && p50 > 0 {
				cell.Speedup = row.Cells[0].P50Micros / p50
			} else if p50 > 0 {
				cell.Speedup = 1
			}
			row.Cells = append(row.Cells, cell)
		}
	}
	return report, nil
}

// RunScaling measures and writes the report as JSON.
func RunScaling(w io.Writer, cfg ScalingConfig) (*ScalingReport, error) {
	report, err := MeasureScaling(cfg)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return nil, err
	}
	return report, nil
}

// FormatScalingTable renders the report as an aligned text table: one
// row per engine, a p50 and speedup column per procs value. Engines
// whose solves adapted their ρ quota get a trailing step-accounting
// annotation so the adaptive rule's effect is visible in the sweep.
func FormatScalingTable(r *ScalingReport) string {
	out := fmt.Sprintf("scaling %s (n=%d, m=%d, rho=%d, trials=%d)\n",
		r.Graph, r.Vertices, r.Edges, r.Rho, r.Trials)
	out += fmt.Sprintf("%-12s", "engine")
	for _, p := range r.Procs {
		out += fmt.Sprintf(" %9s %8s", fmt.Sprintf("p%d (µs)", p), "speedup")
	}
	out += "\n"
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-12s", row.Engine)
		for _, c := range row.Cells {
			out += fmt.Sprintf(" %9.0f %7.2fx", c.P50Micros, c.Speedup)
		}
		if k := len(row.Cells); k > 0 && row.Cells[k-1].QuotaAdjustments > 0 {
			out += fmt.Sprintf("  [steps=%d quotaadj=%d]",
				row.Cells[k-1].Steps, row.Cells[k-1].QuotaAdjustments)
		}
		out += "\n"
	}
	return out
}

// ScalingBaseline is the committable envelope for scaling sweeps (the
// BENCH_<n>.json shape for multicore baselines, distinguished from the
// engine-matrix shape by Kind == "scaling"). HostProcs records
// runtime.NumCPU() on the measuring host: speedup columns measured where
// HostProcs < procs are oversubscription artifacts, not parallel
// speedup, and the compare gate skips them with a warning instead of
// failing on hardware the baseline never claimed to represent.
type ScalingBaseline struct {
	Kind      string          `json:"kind"`
	HostProcs int             `json:"hostProcs"`
	Workloads []ScalingReport `json:"workloads"`
}

// MeasureScalingSet runs every config and wraps the reports in the
// committable baseline envelope.
func MeasureScalingSet(cfgs []ScalingConfig, progress io.Writer) (*ScalingBaseline, error) {
	b := &ScalingBaseline{Kind: "scaling", HostProcs: runtime.NumCPU()}
	for _, cfg := range cfgs {
		if progress != nil {
			fmt.Fprintf(progress, "# measuring %s n=%d procs=%v trials=%d\n", cfg.Gen, cfg.N, cfg.Procs, cfg.Trials)
		}
		r, err := MeasureScaling(cfg)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprint(progress, FormatScalingTable(r))
		}
		b.Workloads = append(b.Workloads, *r)
	}
	return b, nil
}

// DefaultScalingConfigs is the committed-baseline workload set: the two
// 50k workloads of the matrix trajectory (continuity with BENCH_4/5)
// plus rmat and grid2d sized past a million vertices, where parallelism
// has enough work to pay. The big workloads time four engines (delta is
// covered at 50k; the speedup gate reads parallel/flat/rho) with fewer
// trials to bound wall time — preprocessing is Θ(nρ²) and dominates the
// run as it is. rmat deduplicates edges, so its N overshoots to land
// >= 1M distinct vertices.
func DefaultScalingConfigs() []ScalingConfig {
	procs := []int{1, 2, 4, 8}
	big := []string{"sequential", "parallel", "flat", "rho"}
	return []ScalingConfig{
		{Gen: "rmat", N: 50000, Weights: 10000, Rho: 32, Seed: 42, Trials: 9, Procs: procs},
		{Gen: "grid2d", N: 50000, Weights: 10000, Rho: 32, Seed: 42, Trials: 9, Procs: procs},
		{Gen: "rmat", N: 2100000, Weights: 10000, Rho: 32, Seed: 42, Trials: 3, Procs: procs, Engines: big},
		{Gen: "grid2d", N: 1000000, Weights: 10000, Rho: 32, Seed: 42, Trials: 3, Procs: procs, Engines: big},
	}
}

// ReadScalingBaseline parses a scaling baseline file; ok is false when
// the file is not the scaling shape (e.g. an engine-matrix baseline), so
// callers can dispatch on the committed file's kind.
func ReadScalingBaseline(path string) (*ScalingBaseline, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	var b ScalingBaseline
	if err := json.Unmarshal(data, &b); err != nil || b.Kind != "scaling" {
		return nil, false, nil
	}
	return &b, true, nil
}

// Scaling-gate thresholds: the acceptance bar the committed baseline and
// every re-run must clear on capable hardware.
const (
	// scalingMinSpeedup is the required p50 speedup for the parallel-
	// substrate engines at scalingGateProcs on big workloads.
	scalingMinSpeedup = 1.8
	// scalingGateProcs is the procs column the speedup gate reads.
	scalingGateProcs = 4
	// scalingGateMinVerts qualifies a workload for the speedup gate:
	// below this, per-solve overheads legitimately dominate.
	scalingGateMinVerts = 1000000
	// scalingMaxP1Regress caps the tolerated procs=1 p50 regression vs
	// the baseline (0.10 = 10%): multicore wins must not be bought by
	// slowing the single-core path.
	scalingMaxP1Regress = 0.10
)

// scalingGateEngines are the engines the speedup gate applies to — the
// ones routed through the parallel relax kernels and the ordered-
// frontier substrate.
func scalingGateEngines() map[string]bool {
	return map[string]bool{"parallel": true, "flat": true, "rho": true}
}

// CompareScaling re-runs every workload recorded in a scaling baseline
// and gates two ways: (1) on hosts with at least scalingGateProcs CPUs,
// parallel/flat/rho must reach scalingMinSpeedup at that procs column on
// workloads of scalingGateMinVerts+ vertices; (2) every engine's fresh
// procs=1 p50 must stay within scalingMaxP1Regress of the baseline's.
// Hosts with fewer CPUs skip gate (1) with a warning — a 1-core machine
// cannot measure parallel speedup, only fake it — while gate (2) always
// applies. minSpeedup <= 0 selects the default.
func CompareScaling(w io.Writer, path string, minSpeedup float64) error {
	base, ok, err := ReadScalingBaseline(path)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("bench: %s is not a scaling baseline", path)
	}
	if minSpeedup <= 0 {
		minSpeedup = scalingMinSpeedup
	}
	gateable := runtime.NumCPU() >= scalingGateProcs
	if !gateable {
		fmt.Fprintf(w, "# warning: host has %d CPU(s) < %d; speedup gate skipped (baseline recorded hostProcs=%d)\n",
			runtime.NumCPU(), scalingGateProcs, base.HostProcs)
	}
	var failures []string
	for _, bw := range base.Workloads {
		var engines []string
		for _, row := range bw.Rows {
			engines = append(engines, row.Engine)
		}
		cur, err := MeasureScaling(ScalingConfig{
			Gen: bw.Graph, N: bw.N, Weights: bw.Weights, Rho: bw.Rho,
			Seed: bw.Seed, Trials: bw.Trials, Engines: engines, Procs: bw.Procs,
		})
		if err != nil {
			return fmt.Errorf("bench: re-running %s scaling workload: %v", bw.Graph, err)
		}
		fmt.Fprint(w, FormatScalingTable(cur))
		for ri, bRow := range bw.Rows {
			cRow := cur.Rows[ri]
			// Gate 2: single-core latency must not regress.
			bP1, cP1 := cellAtProcs(bRow.Cells, 1), cellAtProcs(cRow.Cells, 1)
			if bP1 != nil && cP1 != nil && bP1.P50Micros > 0 &&
				cP1.P50Micros > (1+scalingMaxP1Regress)*bP1.P50Micros {
				failures = append(failures, fmt.Sprintf("%s/%s procs=1 p50 %.0fµs -> %.0fµs (>%.0f%% regression)",
					bw.Graph, bRow.Engine, bP1.P50Micros, cP1.P50Micros, scalingMaxP1Regress*100))
			}
			// Gate 1: parallel speedup on big workloads, capable hosts only.
			if gateable && bw.Vertices >= scalingGateMinVerts && scalingGateEngines()[bRow.Engine] {
				if c := cellAtProcs(cRow.Cells, scalingGateProcs); c != nil && c.Speedup < minSpeedup {
					failures = append(failures, fmt.Sprintf("%s/%s speedup %.2fx at %d procs < %.1fx",
						bw.Graph, bRow.Engine, c.Speedup, scalingGateProcs, minSpeedup))
				}
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: %d scaling-gate failure(s): %v", len(failures), failures)
	}
	return nil
}

// cellAtProcs returns the cell measured at the given procs value, nil
// when the sweep has no such column.
func cellAtProcs(cells []ScalingCell, procs int) *ScalingCell {
	for i := range cells {
		if cells[i].Procs == procs {
			return &cells[i]
		}
	}
	return nil
}

// GateScalingReport is the cheap CI monotonicity gate over one fresh
// sweep: every engine's p50 at the sweep's last procs value must reach
// minSpeedup times its p50 at the first (so -min-speedup 1.0 asserts
// "more cores is at least not slower"). Skipped with a warning when the
// host has fewer CPUs than the last procs value — oversubscribed
// timings say nothing about scaling.
func GateScalingReport(w io.Writer, r *ScalingReport, minSpeedup float64) error {
	if len(r.Procs) < 2 {
		return fmt.Errorf("bench: speedup gate needs at least two procs values")
	}
	last := r.Procs[len(r.Procs)-1]
	if runtime.NumCPU() < last {
		fmt.Fprintf(w, "# warning: host has %d CPU(s) < %d; speedup gate skipped\n", runtime.NumCPU(), last)
		return nil
	}
	var failures []string
	for _, row := range r.Rows {
		if c := cellAtProcs(row.Cells, last); c != nil && c.Speedup < minSpeedup {
			failures = append(failures, fmt.Sprintf("%s %.2fx at %d procs < %.2fx",
				row.Engine, c.Speedup, last, minSpeedup))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("bench: %d speedup-gate failure(s): %v", len(failures), failures)
	}
	return nil
}

// MeasureEngineTimelines runs one traced solve per engine on the
// workload and returns the timelines, keyed in engine order — the
// radius-bench -trace mode. Timelines go to their own file, never into
// the BENCH_* baselines: traced solves pay clock-read overhead and
// would skew latency trajectories.
func MeasureEngineTimelines(cfg EngineMatrixConfig) ([]rs.Timeline, error) {
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	timelines := make([]rs.Timeline, 0, len(engines))
	for _, name := range engines {
		eng, err := rs.ParseEngine(name)
		if err != nil {
			return nil, err
		}
		_, _, tl, err := solver.DistancesTraced(0, eng)
		if err != nil {
			return nil, fmt.Errorf("engine %s: %v", name, err)
		}
		timelines = append(timelines, *tl)
	}
	return timelines, nil
}
