package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	AsciiPlot(&buf, "test plot", []Series{
		{Name: "a", X: []float64{1, 10, 100}, Y: []float64{100, 10, 1}},
		{Name: "b", X: []float64{1, 10, 100}, Y: []float64{50, 50, 50}},
	}, 40, 10)
	out := buf.String()
	if !strings.Contains(out, "test plot") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing markers")
	}
	// Axis labels show the data range.
	if !strings.Contains(out, "100") || !strings.Contains(out, "1") {
		t.Fatal("missing axis labels")
	}
}

func TestAsciiPlotCorners(t *testing.T) {
	var buf bytes.Buffer
	// A decreasing series: first point must land in the top-left area,
	// last in the bottom-right.
	AsciiPlot(&buf, "corners", []Series{
		{Name: "s", X: []float64{1, 1000}, Y: []float64{1000, 1}},
	}, 30, 8)
	lines := strings.Split(buf.String(), "\n")
	// Line 1 is the top row of the grid, line 8 the bottom row.
	top, bottom := lines[1], lines[8]
	if !strings.Contains(top, "*") {
		t.Fatalf("top row empty: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("bottom row empty: %q", bottom)
	}
	if strings.Index(top, "*") > strings.Index(bottom, "*") {
		t.Fatal("orientation wrong: decreasing series should go top-left to bottom-right")
	}
}

func TestAsciiPlotDegenerate(t *testing.T) {
	var buf bytes.Buffer
	AsciiPlot(&buf, "empty", nil, 30, 8)
	if !strings.Contains(buf.String(), "no positive data") {
		t.Fatal("empty input not handled")
	}
	buf.Reset()
	// Zero/negative coordinates are skipped; one valid point remains.
	AsciiPlot(&buf, "one", []Series{{Name: "s", X: []float64{0, 5}, Y: []float64{-1, 5}}}, 30, 8)
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("single point not plotted")
	}
	buf.Reset()
	// Tiny dimensions are clamped.
	AsciiPlot(&buf, "tiny", []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{1, 2}}}, 1, 1)
	if len(strings.Split(buf.String(), "\n")) < 6 {
		t.Fatal("dimension clamp failed")
	}
}

func TestAsciiPlotOverlapMarker(t *testing.T) {
	var buf bytes.Buffer
	AsciiPlot(&buf, "overlap", []Series{
		{Name: "a", X: []float64{1, 100}, Y: []float64{1, 100}},
		{Name: "b", X: []float64{1, 100}, Y: []float64{1, 100}},
	}, 30, 8)
	if !strings.Contains(buf.String(), "?") {
		t.Fatal("overlapping points should show ?")
	}
}
