package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with a caption, used to
// render every experiment in the same shape the paper reports.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Add appends a row of already-formatted cells.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

// Series is one named (x, y) sequence of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries prints figure data in a gnuplot-ready layout plus a
// log-log ASCII plot so trends are visible directly in a terminal.
func RenderSeries(w io.Writer, caption string, xlabel, ylabel string, series []Series) {
	fmt.Fprintf(w, "%s\n", caption)
	for _, s := range series {
		fmt.Fprintf(w, "# series: %s  (%s vs %s)\n", s.Name, ylabel, xlabel)
		for i := range s.X {
			fmt.Fprintf(w, "%g\t%g\n", s.X[i], s.Y[i])
		}
	}
	fmt.Fprintln(w)
	AsciiPlot(w, caption, series, 48, 12)
}

// f1, f2 format floats with fixed decimals; fi formats integers.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func fi(v int64) string   { return fmt.Sprintf("%d", v) }
