package bench

// This file implements the route benchmark mode: per-engine
// point-to-point latency with and without goal-directed ALT landmark
// pruning over one preprocessed graph. Every pruned answer is checked
// byte-identical to its unpruned twin — the benchmark doubles as a
// differential harness on the measured workload.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	rs "radiusstep"
)

// RouteBenchConfig describes one route benchmark run.
type RouteBenchConfig struct {
	Gen       string // generator family (grid2d, road, web, rmat, ...)
	N         int    // approximate vertex count
	Weights   int    // uniform integer weights in [1, Weights]; 0 keeps generator weights
	Rho       int    // preprocessing ball size
	Seed      uint64
	Pairs     int      // route queries per engine (deterministic sampling)
	Landmarks int      // ALT landmark count (default 8)
	Engines   []string // engine names; empty means all five
}

// RouteBenchRow is one engine's route measurement. PrunedRatio is the
// fraction of relaxation candidates the landmark bound skipped across
// all pruned solves — the work saved, independent of clock noise.
type RouteBenchRow struct {
	Engine            string  `json:"engine"`
	UnprunedP50Micros float64 `json:"unprunedP50Micros"`
	PrunedP50Micros   float64 `json:"prunedP50Micros"`
	// P50Ratio is pruned p50 / unpruned p50; < 1 means pruning wins.
	P50Ratio         float64 `json:"p50Ratio"`
	UnprunedRelax    int64   `json:"unprunedRelax"`
	PrunedRelax      int64   `json:"prunedRelax"`
	PrunedCandidates int64   `json:"prunedCandidates"`
	PrunedRatio      float64 `json:"prunedRatio"`
	Reachable        int     `json:"reachable"`
	ShortCircuited   int     `json:"shortCircuited"`
}

// RouteBenchReport is the JSON envelope emitted by RunRouteBench.
type RouteBenchReport struct {
	Graph     string          `json:"graph"`
	N         int             `json:"n"`
	Seed      uint64          `json:"seed"`
	Weights   int             `json:"weights"`
	Vertices  int             `json:"vertices"`
	Edges     int             `json:"edges"`
	Rho       int             `json:"rho"`
	Pairs     int             `json:"pairs"`
	Landmarks int             `json:"landmarks"`
	Procs     int             `json:"procs"`
	Rows      []RouteBenchRow `json:"rows"`
}

// MeasureRouteBench builds one preprocessed solver, builds the landmark
// set, and times each engine's target solves over the same
// deterministic source/target pairs, pruned and unpruned. It errors if
// any pruned distance differs bit-for-bit from its unpruned twin.
func MeasureRouteBench(cfg RouteBenchConfig) (*RouteBenchReport, error) {
	if cfg.Pairs <= 0 {
		cfg.Pairs = 25
	}
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	if cfg.Landmarks == 0 {
		cfg.Landmarks = 8
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	if _, err := solver.BuildLandmarks(cfg.Landmarks, rs.LandmarksFarthest); err != nil {
		return nil, err
	}
	n := g.NumVertices()

	// Deterministic pair sampling: coprime strides spread sources and
	// targets over the id space without any RNG, so a committed workload
	// re-runs on the same pairs forever.
	pairs := make([][2]rs.Vertex, 0, cfg.Pairs)
	for i := 0; len(pairs) < cfg.Pairs; i++ {
		src := rs.Vertex((i*7919 + 1) % n)
		dst := rs.Vertex(((i+3)*104729 + 11) % n)
		if src != dst {
			pairs = append(pairs, [2]rs.Vertex{src, dst})
		}
	}

	report := &RouteBenchReport{
		Graph:     cfg.Gen,
		N:         cfg.N,
		Seed:      cfg.Seed,
		Weights:   cfg.Weights,
		Vertices:  n,
		Edges:     g.NumEdges(),
		Rho:       cfg.Rho,
		Pairs:     len(pairs),
		Landmarks: solver.Landmarks(),
		Procs:     runtime.GOMAXPROCS(0),
	}
	for _, name := range engines {
		eng, err := rs.ParseEngine(name)
		if err != nil {
			return nil, err
		}
		// Warm the workspace pool so the timed loop measures steady state.
		if _, _, _, err := solver.Route(pairs[0][0], pairs[0][1], eng, false); err != nil {
			return nil, fmt.Errorf("engine %s: %v", name, err)
		}
		row := RouteBenchRow{Engine: name}
		unpruned := make([]float64, 0, len(pairs))
		pruned := make([]float64, 0, len(pairs))
		for _, p := range pairs {
			t0 := time.Now()
			_, du, su, err := solver.Route(p[0], p[1], eng, false)
			unpruned = append(unpruned, float64(time.Since(t0).Microseconds()))
			if err != nil {
				return nil, fmt.Errorf("engine %s unpruned %d..%d: %v", name, p[0], p[1], err)
			}
			t1 := time.Now()
			_, dp, sp, err := solver.Route(p[0], p[1], eng, true)
			pruned = append(pruned, float64(time.Since(t1).Microseconds()))
			if err != nil {
				return nil, fmt.Errorf("engine %s pruned %d..%d: %v", name, p[0], p[1], err)
			}
			if math.Float64bits(du) != math.Float64bits(dp) {
				return nil, fmt.Errorf("engine %s: pruned distance %v != unpruned %v for %d..%d",
					name, dp, du, p[0], p[1])
			}
			if !math.IsInf(du, 1) {
				row.Reachable++
			}
			if sp.Steps == 0 && su.Steps > 0 {
				row.ShortCircuited++
			}
			row.UnprunedRelax += su.Relaxations
			row.PrunedRelax += sp.Relaxations
			row.PrunedCandidates += sp.Pruned
		}
		sort.Float64s(unpruned)
		sort.Float64s(pruned)
		row.UnprunedP50Micros = unpruned[len(unpruned)/2]
		row.PrunedP50Micros = pruned[len(pruned)/2]
		if row.UnprunedP50Micros > 0 {
			row.P50Ratio = row.PrunedP50Micros / row.UnprunedP50Micros
		}
		if total := row.PrunedRelax + row.PrunedCandidates; total > 0 {
			row.PrunedRatio = float64(row.PrunedCandidates) / float64(total)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// RunRouteBench measures the route benchmark and emits the report as
// indented JSON on w.
func RunRouteBench(w io.Writer, cfg RouteBenchConfig) (*RouteBenchReport, error) {
	report, err := MeasureRouteBench(cfg)
	if err != nil {
		return nil, err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return nil, err
	}
	return report, nil
}

// FormatRouteTable renders the report as an aligned human-readable
// table (the stderr companion to the JSON report).
func FormatRouteTable(r *RouteBenchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "route bench: %s n=%d m=%d rho=%d pairs=%d landmarks=%d procs=%d\n",
		r.Graph, r.Vertices, r.Edges, r.Rho, r.Pairs, r.Landmarks, r.Procs)
	fmt.Fprintf(&b, "  %-12s %15s %13s %7s %12s %11s %8s\n",
		"engine", "unpruned (µs)", "pruned (µs)", "ratio", "relax saved", "pruned", "pruned%")
	for _, row := range r.Rows {
		saved := row.UnprunedRelax - row.PrunedRelax
		fmt.Fprintf(&b, "  %-12s %15.0f %13.0f %6.2fx %12d %11d %7.1f%%\n",
			row.Engine, row.UnprunedP50Micros, row.PrunedP50Micros, row.P50Ratio,
			saved, row.PrunedCandidates, row.PrunedRatio*100)
	}
	return b.String()
}
