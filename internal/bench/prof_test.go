package bench

import (
	"testing"

	rs "radiusstep"
)

// BenchmarkParallelRmat times steady-state parallel-engine (Algorithm
// 2) solves on the BENCH_* rmat workload — the single number the
// frontier-substrate work optimizes. Run with -cpuprofile to see the
// solve-path split (relax substeps vs frontier seal/extract); run
// under GOMAXPROCS=1 to reproduce the committed BENCH_5.json regime.
func BenchmarkParallelRmat(b *testing.B) {
	g, err := rs.GenerateByName("rmat", 50000, 42)
	if err != nil {
		b.Fatal(err)
	}
	g = rs.WithUniformIntWeights(g, 1, 10000, 43)
	s, err := rs.NewSolver(g, rs.Options{Rho: 32})
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumVertices()
	if _, _, err := s.DistancesWith(0, rs.EngineParallel); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DistancesWith(rs.Vertex((i*7919)%n), rs.EngineParallel); err != nil {
			b.Fatal(err)
		}
	}
}
