// Package bench is the experiment harness: it prepares the paper's six
// workload graphs (offline synthetic substitutes, see DESIGN.md §4),
// runs each experiment behind Figures 1–5 and Tables 1–7, and renders
// the same rows and series the paper reports.
package bench

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"radiusstep/internal/gen"
	"radiusstep/internal/graph"
)

// Scale bundles every size knob of the experiment suite. The paper runs
// ~1M-vertex graphs, 1000 sources and ρ up to 10⁴ on a large machine;
// Default is sized so the whole suite finishes in minutes on a laptop
// while preserving every trend (preprocessing is Θ(nρ²)).
type Scale struct {
	Name      string
	RoadN     int // vertices per road-network substitute
	WebN      int // vertices per web-graph substitute
	Grid2Side int
	Grid3Side int
	Rhos      []int // ρ sweep for step experiments (Tables 4–7, Figs 4–5)
	RhosCut   []int // ρ sweep for shortcut experiments (Tables 2–3, Fig 3)
	Ks        []int // k sweep for Tables 2–3
	Sources   int   // sampled sources per graph
	CombDs    []int // d sweep for the Figure-2 experiment
}

// Tiny is for tests of the harness itself.
var Tiny = Scale{
	Name:      "tiny",
	RoadN:     2500,
	WebN:      2000,
	Grid2Side: 45,
	Grid3Side: 13,
	Rhos:      []int{1, 4, 16},
	RhosCut:   []int{4, 16},
	Ks:        []int{2, 3},
	Sources:   2,
	CombDs:    []int{4, 8, 16},
}

// Default is what `go test -bench` and the CLI run out of the box.
var Default = Scale{
	Name:      "default",
	RoadN:     40000,
	WebN:      30000,
	Grid2Side: 200,
	Grid3Side: 34,
	Rhos:      []int{1, 2, 5, 10, 20, 50, 100},
	RhosCut:   []int{10, 20, 50, 100},
	Ks:        []int{2, 3, 4, 5},
	Sources:   4,
	CombDs:    []int{8, 16, 32, 64, 128},
}

// Full approaches the paper's configuration; expect long runtimes.
var Full = Scale{
	Name:      "full",
	RoadN:     250000,
	WebN:      150000,
	Grid2Side: 500,
	Grid3Side: 63,
	Rhos:      []int{1, 2, 5, 10, 20, 50, 100, 200, 500},
	RhosCut:   []int{10, 20, 50, 100, 200},
	Ks:        []int{2, 3, 4, 5},
	Sources:   8,
	CombDs:    []int{8, 16, 32, 64, 128, 256},
}

// ScaleByName resolves "tiny", "default" or "full".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "default", "":
		return Default, nil
	case "full":
		return Full, nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want tiny|default|full)", name)
}

// Workload is one prepared graph: connected, with both unit and
// uniformly weighted variants and a deterministic source sample.
type Workload struct {
	Name       string // e.g. "road-a"
	Kind       string // "road", "web", "grid2d", "grid3d"
	Unweighted *graph.CSR
	Weighted   *graph.CSR
	Sources    []graph.V
}

// workloadSpecs lists the six graphs standing in for the paper's
// road maps (PA/TX), web graphs (NotreDame/Stanford) and grids (2D/3D).
func workloadSpecs(sc Scale) []struct {
	name, kind string
	build      func() *graph.CSR
} {
	return []struct {
		name, kind string
		build      func() *graph.CSR
	}{
		{"road-a", "road", func() *graph.CSR {
			g, _ := graph.LargestComponent(gen.RoadNet(sc.RoadN, 6, 101))
			return g
		}},
		{"road-b", "road", func() *graph.CSR {
			g, _ := graph.LargestComponent(gen.RoadNet(sc.RoadN*5/4, 5.5, 202))
			return g
		}},
		// NotreDame has m/n ≈ 7 arcs (attach 3); Stanford m/n ≈ 14
		// (attach 7). Hubs are the property that matters (§5.2).
		{"web-a", "web", func() *graph.CSR { return gen.ScaleFree(sc.WebN, 3, 303) }},
		{"web-b", "web", func() *graph.CSR { return gen.ScaleFree(sc.WebN, 7, 404) }},
		{"grid2d", "grid2d", func() *graph.CSR { return gen.Grid2D(sc.Grid2Side, sc.Grid2Side) }},
		{"grid3d", "grid3d", func() *graph.CSR { return gen.Grid3D(sc.Grid3Side, sc.Grid3Side, sc.Grid3Side) }},
	}
}

var (
	wlMu    sync.Mutex
	wlCache = map[string][]*Workload{}
)

// Workloads prepares (and caches per process) the six graphs at the
// given scale. Weights are uniform integers in [1, 10⁴] as in the paper;
// sources are a fixed seeded sample shared by all experiments.
func Workloads(sc Scale) []*Workload {
	wlMu.Lock()
	defer wlMu.Unlock()
	if ws, ok := wlCache[sc.Name]; ok {
		return ws
	}
	var out []*Workload
	for i, spec := range workloadSpecs(sc) {
		g := spec.build()
		unit := graph.UnitWeights(g)
		weighted := gen.WithUniformIntWeights(g, 1, 10000, uint64(1000+i))
		out = append(out, &Workload{
			Name:       spec.name,
			Kind:       spec.kind,
			Unweighted: unit,
			Weighted:   weighted,
			Sources:    SampleSources(g.NumVertices(), sc.Sources, uint64(7700+i)),
		})
	}
	wlCache[sc.Name] = out
	return out
}

// ShortcutWorkloads returns the three graphs Figure 3 and Tables 2–3 use:
// one road map, one web graph, one 2D grid. The shortcut experiments run
// on the weighted variants (see CutsFor for the deviation rationale).
func ShortcutWorkloads(sc Scale) []*Workload {
	all := Workloads(sc)
	return []*Workload{all[0], all[3], all[4]} // road-a, web-b, grid2d
}

// SampleSources draws k distinct vertices deterministically.
func SampleSources(n, k int, seed uint64) []graph.V {
	if k > n {
		k = n
	}
	r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	seen := make(map[graph.V]bool, k)
	out := make([]graph.V, 0, k)
	for len(out) < k {
		v := graph.V(r.IntN(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
