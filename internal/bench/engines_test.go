package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRunEngineMatrix(t *testing.T) {
	var buf bytes.Buffer
	err := RunEngineMatrix(&buf, EngineMatrixConfig{
		Gen: "grid2d", N: 400, Weights: 50, Rho: 8, Seed: 1, Trials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Vertices int              `json:"vertices"`
		Rows     []EngineBenchRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("matrix output is not JSON: %v\n%s", err, buf.String())
	}
	if report.Vertices == 0 || len(report.Rows) != len(AllEngineNames()) {
		t.Fatalf("implausible report: %+v", report)
	}
	for _, row := range report.Rows {
		if row.Steps < 1 || row.Relaxations < 1 {
			t.Fatalf("engine %s: empty solve profile: %+v", row.Engine, row)
		}
	}
	if _, err := json.Marshal(report.Rows); err != nil {
		t.Fatal(err)
	}
	if err := RunEngineMatrix(&buf, EngineMatrixConfig{Gen: "nope", N: 10}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if err := RunEngineMatrix(&buf, EngineMatrixConfig{Gen: "grid2d", N: 100, Engines: []string{"bogus"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
