package bench

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunEngineMatrix(t *testing.T) {
	var buf bytes.Buffer
	err := RunEngineMatrix(&buf, EngineMatrixConfig{
		Gen: "grid2d", N: 400, Weights: 50, Rho: 8, Seed: 1, Trials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Vertices int              `json:"vertices"`
		Rows     []EngineBenchRow `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &report); err != nil {
		t.Fatalf("matrix output is not JSON: %v\n%s", err, buf.String())
	}
	if report.Vertices == 0 || len(report.Rows) != len(AllEngineNames()) {
		t.Fatalf("implausible report: %+v", report)
	}
	for _, row := range report.Rows {
		if row.Steps < 1 || row.Relaxations < 1 {
			t.Fatalf("engine %s: empty solve profile: %+v", row.Engine, row)
		}
	}
	if _, err := json.Marshal(report.Rows); err != nil {
		t.Fatal(err)
	}
	if err := RunEngineMatrix(&buf, EngineMatrixConfig{Gen: "nope", N: 10}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if err := RunEngineMatrix(&buf, EngineMatrixConfig{Gen: "grid2d", N: 100, Engines: []string{"bogus"}}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// BenchmarkEngineMatrixTiny is the CI perf-smoke target: one tiny
// engine-matrix run per iteration, exercising build + preprocess + all
// five engines through the override path. CI runs it with -benchtime 1x
// as a compile-and-run gate so the benchmark surface can never rot.
func BenchmarkEngineMatrixTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MeasureEngineMatrix(EngineMatrixConfig{
			Gen: "grid2d", N: 1024, Weights: 100, Rho: 8, Trials: 3, Seed: 7,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareSelf re-runs a self-measured baseline through the
// compare path (always a pass: same binary both sides).
func BenchmarkCompareSelf(b *testing.B) {
	report, err := MeasureEngineMatrix(EngineMatrixConfig{
		Gen: "grid2d", N: 1024, Weights: 100, Rho: 8, Trials: 3, Seed: 7,
		Engines: []string{"sequential", "delta"},
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	path := dir + "/base.json"
	data, _ := json.Marshal([]EngineMatrixReport{*report})
	if err := os.WriteFile(path, data, 0o644); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A 100x threshold: this gate checks the machinery, not the
		// noisy single-iteration timings.
		if err := CompareEngineMatrix(io.Discard, path, 100, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCompareEngineMatrix: a self-measured baseline passes with any
// sane threshold, and a fabricated too-fast baseline trips the gate.
func TestCompareEngineMatrix(t *testing.T) {
	report, err := MeasureEngineMatrix(EngineMatrixConfig{
		Gen: "grid2d", N: 400, Weights: 50, Rho: 8, Seed: 1, Trials: 3,
		Engines: []string{"sequential"},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/base.json"
	write := func(r EngineMatrixReport) {
		data, err := json.Marshal([]EngineMatrixReport{r})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(*report)
	// Generous threshold: same binary, must pass whatever the noise.
	if err := CompareEngineMatrix(io.Discard, path, 1000, 1000); err != nil {
		t.Fatalf("self-compare failed: %v", err)
	}
	// A baseline claiming sub-microsecond solves must trip the gate.
	fake := *report
	fake.Rows = append([]EngineBenchRow(nil), report.Rows...)
	for i := range fake.Rows {
		fake.Rows[i].P50Micros = 0.001
	}
	write(fake)
	if err := CompareEngineMatrix(io.Discard, path, 0.25, 0); err == nil {
		t.Fatal("fabricated regression not detected")
	}
	// A near-zero fabricated allocation baseline must NOT trip the gate
	// (the absolute increase sits inside the noise floor), and neither
	// may the true baseline with the gate disabled.
	lean := *report
	lean.Rows = append([]EngineBenchRow(nil), report.Rows...)
	for i := range lean.Rows {
		lean.Rows[i].AllocsPerSolve = 0.1
	}
	write(lean)
	if err := CompareEngineMatrix(io.Discard, path, 1000, 2); err != nil {
		t.Fatalf("allocation gate tripped inside the noise floor: %v", err)
	}
}

// TestAllocRegressed pins the allocation-gate predicate: ratio and
// absolute floor must BOTH clear, and factor <= 0 disables the gate.
// This is the rule that catches a 500k-alloc/solve reintroduction (the
// pre-frontier parallel engine) without flapping on 1-vs-3 noise.
func TestAllocRegressed(t *testing.T) {
	cases := []struct {
		base, cur, factor float64
		want              bool
	}{
		{1.4, 4, 2, false},           // ratio trips, floor saves: noise
		{1.4, 513946, 2, true},       // the seed regression this PR fixes
		{400, 900, 2, true},          // doubled and past the floor
		{400, 700, 2, false},         // below the ratio
		{500000, 100000, 2, false},   // improvement never fails
		{1.4, 513946, 0, false},      // gate disabled
		{0, 300, 2, true},            // zero baseline, real growth
		{0, 100, 2, false},           // zero baseline, inside the floor
		{100000, 200001, 2.5, false}, // custom factor honored
	}
	for i, c := range cases {
		if got := allocRegressed(c.base, c.cur, c.factor); got != c.want {
			t.Fatalf("case %d: allocRegressed(%v, %v, %v) = %v, want %v", i, c.base, c.cur, c.factor, got, c.want)
		}
	}
}

// TestLatestBaseline: the freshest committed BENCH_<n>.json wins, and a
// directory without baselines errors.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_4.json", "BENCH_5.json", "BENCH_12.json", "BENCH_x.json", "other.json"} {
		if err := os.WriteFile(dir+"/"+name, []byte("[]"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_12.json" {
		t.Fatalf("LatestBaseline = %s, want BENCH_12.json", got)
	}
	if _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Fatal("empty dir produced a baseline")
	}
}

// TestReadBaselineShapes: both a bare report object and a report array
// parse; garbage fails loudly.
func TestReadBaselineShapes(t *testing.T) {
	dir := t.TempDir()
	one := EngineMatrixReport{Graph: "grid2d", N: 10, Trials: 1}
	for name, v := range map[string]any{"arr.json": []EngineMatrixReport{one, one}, "one.json": one} {
		data, _ := json.Marshal(v)
		if err := os.WriteFile(dir+"/"+name, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := ReadBaseline(dir + "/arr.json"); err != nil || len(got) != 2 {
		t.Fatalf("array baseline: %d reports, err %v", len(got), err)
	}
	if got, err := ReadBaseline(dir + "/one.json"); err != nil || len(got) != 1 {
		t.Fatalf("single baseline: %d reports, err %v", len(got), err)
	}
	if err := os.WriteFile(dir+"/bad.json", []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(dir + "/bad.json"); err == nil {
		t.Fatal("garbage baseline accepted")
	}
}
