package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "default", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestWorkloadsShape(t *testing.T) {
	wls := Workloads(Tiny)
	if len(wls) != 6 {
		t.Fatalf("workloads = %d, want 6", len(wls))
	}
	names := map[string]bool{}
	for _, wl := range wls {
		names[wl.Name] = true
		if wl.Unweighted.NumVertices() != wl.Weighted.NumVertices() {
			t.Fatalf("%s: variant sizes differ", wl.Name)
		}
		if !wl.Unweighted.IsUnit() {
			t.Fatalf("%s: unweighted variant has weights", wl.Name)
		}
		if wl.Weighted.MaxWeight() > 10000 || wl.Weighted.MinWeight() < 1 {
			t.Fatalf("%s: weights out of paper range", wl.Name)
		}
		if len(wl.Sources) != Tiny.Sources {
			t.Fatalf("%s: %d sources", wl.Name, len(wl.Sources))
		}
	}
	for _, want := range []string{"road-a", "road-b", "web-a", "web-b", "grid2d", "grid3d"} {
		if !names[want] {
			t.Fatalf("missing workload %s", want)
		}
	}
	// Cached: same pointer on second call.
	if Workloads(Tiny)[0] != wls[0] {
		t.Fatal("workloads not cached")
	}
}

func TestSampleSourcesDistinctDeterministic(t *testing.T) {
	a := SampleSources(100, 10, 5)
	b := SampleSources(100, 10, 5)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[int32]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate source")
		}
		seen[a[i]] = true
	}
	if got := SampleSources(3, 10, 1); len(got) != 3 {
		t.Fatalf("clamp failed: %d", len(got))
	}
}

func TestStepsForCachesAndDecreases(t *testing.T) {
	wl := Workloads(Tiny)[4] // grid2d
	r1, err := StepsFor(Tiny, wl, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := StepsFor(Tiny, wl, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r16.MeanSteps >= r1.MeanSteps {
		t.Fatalf("steps did not decrease: rho=1 %.1f, rho=16 %.1f", r1.MeanSteps, r16.MeanSteps)
	}
	// Cached result identical.
	again, err := StepsFor(Tiny, wl, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	if again != r16 {
		t.Fatal("cache returned different result")
	}
}

func TestRunExperimentAllTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny experiment suite still takes a few seconds")
	}
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "all", Tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Figure 1", "Figure 2", "Figure 3",
		"Table 2", "Table 3", "Figure 4", "Table 4", "Table 5",
		"Figure 5", "Table 6", "Table 7", "Ablation",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(&buf, "nope", Tiny); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		ids[e.ID] = true
	}
	for _, want := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig1", "fig2", "fig3", "fig4", "fig5",
		"ablation-k", "ablation-delta", "ablation-engines",
	} {
		if !ids[want] {
			t.Fatalf("registry missing %s", want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Caption: "cap", Header: []string{"a", "bb"}}
	tab.Add("1", "2")
	tab.Add("333", "4")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "cap") || !strings.Contains(out, "333") {
		t.Fatalf("render wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // caption, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestRenderSeries(t *testing.T) {
	var buf bytes.Buffer
	RenderSeries(&buf, "figX", "x", "y", []Series{{Name: "s", X: []float64{1, 2}, Y: []float64{3, 4}}})
	out := buf.String()
	if !strings.Contains(out, "figX") || !strings.Contains(out, "series: s") {
		t.Fatalf("series render wrong:\n%s", out)
	}
}

func TestFig2ShowsQuadraticScanning(t *testing.T) {
	// The scan/rho^2 ratio must stay within a constant band while rho^2
	// varies by orders of magnitude — that is the Figure-2 claim.
	var buf bytes.Buffer
	if err := Fig2(&buf, Tiny); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "scan/rho^2") {
		t.Fatalf("missing ratio column:\n%s", out)
	}
}
