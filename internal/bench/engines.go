package bench

// This file implements the engine matrix mode: per-engine solve latency
// and allocation profiles over one graph, emitted as JSON. It seeds the
// BENCH_* trajectory — a machine-readable record of how each stepping
// strategy performs on a workload, comparable across commits.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	rs "radiusstep"
)

// EngineMatrixConfig describes one matrix run.
type EngineMatrixConfig struct {
	Gen     string // generator family (grid2d, road, web, ...)
	N       int    // approximate vertex count
	Weights int    // uniform integer weights in [1, Weights]; 0 keeps generator weights
	Rho     int    // preprocessing ball size (and the ρ-stepping quota)
	Seed    uint64
	Trials  int      // timed solves per engine
	Engines []string // engine names; empty means all five
}

// EngineBenchRow is one engine's measurement. The frontier* fields are
// the ordered-frontier substrate's per-solve operation counters,
// nonzero only for the engines built on it (parallel, rho) — the same
// counters /v1/stats aggregates, so bench rows and serving telemetry
// triangulate.
type EngineBenchRow struct {
	Engine            string  `json:"engine"`
	P50Micros         float64 `json:"p50Micros"`
	P90Micros         float64 `json:"p90Micros"`
	AllocsPerSolve    float64 `json:"allocsPerSolve"`
	BytesPerSolve     float64 `json:"bytesPerSolve"`
	Steps             int     `json:"steps"`
	Substeps          int     `json:"substeps"`
	QuotaAdjustments  int     `json:"quotaAdjustments,omitempty"`
	Relaxations       int64   `json:"relaxations"`
	FrontierPushes    int64   `json:"frontierPushes,omitempty"`
	FrontierBatches   int64   `json:"frontierBatches,omitempty"`
	FrontierMerges    int64   `json:"frontierMerges,omitempty"`
	FrontierExtracted int64   `json:"frontierExtracted,omitempty"`
	FrontierStale     int64   `json:"frontierStale,omitempty"`
	FrontierSelects   int64   `json:"frontierSelects,omitempty"`
}

// EngineMatrixReport is the JSON envelope emitted by RunEngineMatrix.
// It carries the full run configuration (generator, size, seed, weights)
// so a committed baseline file can be re-run and compared on the same
// workload by CompareEngineMatrix.
type EngineMatrixReport struct {
	Graph    string           `json:"graph"`
	N        int              `json:"n"`
	Seed     uint64           `json:"seed"`
	Weights  int              `json:"weights"`
	Vertices int              `json:"vertices"`
	Edges    int              `json:"edges"`
	Rho      int              `json:"rho"`
	Trials   int              `json:"trials"`
	Procs    int              `json:"procs"`
	Rows     []EngineBenchRow `json:"rows"`
}

// AllEngineNames lists the five engines in framework order.
func AllEngineNames() []string {
	return []string{"sequential", "parallel", "flat", "delta", "rho"}
}

// RunEngineMatrix builds one preprocessed solver and times every
// requested engine on it via the per-query override path — the exact
// code path the daemon's ?engine= parameter takes — reporting p50/p90
// solve latency and per-solve allocation counts as JSON.
func RunEngineMatrix(w io.Writer, cfg EngineMatrixConfig) error {
	report, err := MeasureEngineMatrix(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// MeasureEngineMatrix runs the matrix and returns the report instead of
// encoding it; RunEngineMatrix and CompareEngineMatrix share it.
func MeasureEngineMatrix(cfg EngineMatrixConfig) (*EngineMatrixReport, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 9
	}
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()

	report := &EngineMatrixReport{
		Graph:    cfg.Gen,
		N:        cfg.N,
		Seed:     cfg.Seed,
		Weights:  cfg.Weights,
		Vertices: n,
		Edges:    g.NumEdges(),
		Rho:      cfg.Rho,
		Trials:   cfg.Trials,
		Procs:    runtime.GOMAXPROCS(0),
	}
	for _, name := range engines {
		eng, err := rs.ParseEngine(name)
		if err != nil {
			return nil, err
		}
		// Warm the workspace pool so the timed loop measures steady
		// state, not first-solve buffer growth.
		var lastStats rs.Stats
		if _, lastStats, err = solver.DistancesWith(0, eng); err != nil {
			return nil, fmt.Errorf("engine %s: %v", name, err)
		}

		durs := make([]float64, cfg.Trials)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < cfg.Trials; i++ {
			src := rs.Vertex((i * 7919) % n)
			t0 := time.Now()
			_, st, err := solver.DistancesWith(src, eng)
			durs[i] = float64(time.Since(t0).Microseconds())
			if err != nil {
				return nil, fmt.Errorf("engine %s: %v", name, err)
			}
			lastStats = st
		}
		runtime.ReadMemStats(&after)
		sort.Float64s(durs)

		report.Rows = append(report.Rows, EngineBenchRow{
			Engine:            name,
			P50Micros:         durs[len(durs)/2],
			P90Micros:         durs[len(durs)*9/10],
			AllocsPerSolve:    float64(after.Mallocs-before.Mallocs) / float64(cfg.Trials),
			BytesPerSolve:     float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Trials),
			Steps:             lastStats.Steps,
			Substeps:          lastStats.Substeps,
			QuotaAdjustments:  lastStats.QuotaAdjustments,
			Relaxations:       lastStats.Relaxations,
			FrontierPushes:    lastStats.Frontier.Pushes,
			FrontierBatches:   lastStats.Frontier.Batches,
			FrontierMerges:    lastStats.Frontier.Merges,
			FrontierExtracted: lastStats.Frontier.Extracted,
			FrontierStale:     lastStats.Frontier.Stale,
			FrontierSelects:   lastStats.Frontier.Selects,
		})
	}
	return report, nil
}

// ReadBaseline parses a baseline file written by radius-bench: either a
// single EngineMatrixReport object or a JSON array of them (one report
// per workload, the BENCH_* convention).
func ReadBaseline(path string) ([]EngineMatrixReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var many []EngineMatrixReport
	if err := json.Unmarshal(data, &many); err == nil {
		return many, nil
	}
	var one EngineMatrixReport
	if err := json.Unmarshal(data, &one); err != nil {
		return nil, fmt.Errorf("bench: baseline %s is neither a report nor a report array: %v", path, err)
	}
	return []EngineMatrixReport{one}, nil
}

// allocNoiseFloor is the absolute allocs-per-solve increase below which
// the allocation gate stays quiet: an engine drifting from 1.4 to 4
// allocs trips a naive 2x ratio but is runtime noise, not a leak.
const allocNoiseFloor = 256

// allocRegressed is the allocation-gate predicate: cur regressed against
// base when it grew by more than factor times (factor <= 0 disables the
// gate) AND the absolute increase clears the noise floor.
func allocRegressed(base, cur, factor float64) bool {
	return factor > 0 && cur > factor*base && cur-base > allocNoiseFloor
}

// LatestBaseline returns the highest-numbered BENCH_<n>.json in dir —
// the freshest committed baseline, so `radius-bench -compare latest`
// always gates against the newest trajectory point without hardcoding a
// file name.
func LatestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		name := filepath.Base(m)
		var n int
		if _, err := fmt.Sscanf(name, "BENCH_%d.json", &n); err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("bench: no BENCH_<n>.json baseline found in %s", dir)
	}
	return best, nil
}

// CompareEngineMatrix re-runs every workload recorded in the baseline
// file on the current build and compares per-engine p50 latency and
// allocation counts. It returns an error — the CI-gate signal — when any
// engine's p50 regressed by more than maxRegress (0.25 = 25%), or its
// allocs-per-solve grew by more than allocRegress times the baseline
// (2 = doubled; <= 0 disables the allocation gate) beyond an absolute
// noise floor. Improvements never fail the gate.
func CompareEngineMatrix(w io.Writer, path string, maxRegress, allocRegress float64) error {
	baselines, err := ReadBaseline(path)
	if err != nil {
		return err
	}
	if len(baselines) == 0 {
		return fmt.Errorf("bench: baseline %s holds no reports", path)
	}
	var regressions []string
	for _, base := range baselines {
		if base.Procs != runtime.GOMAXPROCS(0) {
			fmt.Fprintf(w, "# warning: baseline %s/%s recorded at GOMAXPROCS=%d, running at %d\n",
				path, base.Graph, base.Procs, runtime.GOMAXPROCS(0))
		}
		var engines []string
		for _, row := range base.Rows {
			engines = append(engines, row.Engine)
		}
		cur, err := MeasureEngineMatrix(EngineMatrixConfig{
			Gen: base.Graph, N: base.N, Weights: base.Weights, Rho: base.Rho,
			Seed: base.Seed, Trials: base.Trials, Engines: engines,
		})
		if err != nil {
			return fmt.Errorf("bench: re-running %s workload: %v", base.Graph, err)
		}
		fmt.Fprintf(w, "workload %s (n=%d, m=%d, rho=%d, trials=%d)\n",
			base.Graph, cur.Vertices, cur.Edges, base.Rho, base.Trials)
		fmt.Fprintf(w, "  %-12s %14s %14s %8s %12s %12s\n",
			"engine", "base p50 (µs)", "now p50 (µs)", "ratio", "base allocs", "now allocs")
		for i, bRow := range base.Rows {
			cRow := cur.Rows[i]
			ratio := cRow.P50Micros / bRow.P50Micros
			mark := ""
			if bRow.P50Micros > 0 && ratio > 1+maxRegress {
				mark = "  REGRESSED"
				regressions = append(regressions,
					fmt.Sprintf("%s/%s p50 %.0fµs -> %.0fµs (%.2fx)", base.Graph, bRow.Engine, bRow.P50Micros, cRow.P50Micros, ratio))
			}
			if allocRegressed(bRow.AllocsPerSolve, cRow.AllocsPerSolve, allocRegress) {
				mark += "  ALLOCS-REGRESSED"
				regressions = append(regressions,
					fmt.Sprintf("%s/%s allocs/solve %.0f -> %.0f (>%.1fx)",
						base.Graph, bRow.Engine, bRow.AllocsPerSolve, cRow.AllocsPerSolve, allocRegress))
			}
			fmt.Fprintf(w, "  %-12s %14.0f %14.0f %7.2fx %12.0f %12.0f%s\n",
				bRow.Engine, bRow.P50Micros, cRow.P50Micros, ratio,
				bRow.AllocsPerSolve, cRow.AllocsPerSolve, mark)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench: %d regression(s) beyond the gate (p50 >%.0f%%, allocs >%.1fx): %v",
			len(regressions), maxRegress*100, allocRegress, regressions)
	}
	return nil
}
