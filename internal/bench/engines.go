package bench

// This file implements the engine matrix mode: per-engine solve latency
// and allocation profiles over one graph, emitted as JSON. It seeds the
// BENCH_* trajectory — a machine-readable record of how each stepping
// strategy performs on a workload, comparable across commits.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	rs "radiusstep"
)

// EngineMatrixConfig describes one matrix run.
type EngineMatrixConfig struct {
	Gen     string // generator family (grid2d, road, web, ...)
	N       int    // approximate vertex count
	Weights int    // uniform integer weights in [1, Weights]; 0 keeps generator weights
	Rho     int    // preprocessing ball size (and the ρ-stepping quota)
	Seed    uint64
	Trials  int      // timed solves per engine
	Engines []string // engine names; empty means all five
}

// EngineBenchRow is one engine's measurement.
type EngineBenchRow struct {
	Engine         string  `json:"engine"`
	P50Micros      float64 `json:"p50Micros"`
	P90Micros      float64 `json:"p90Micros"`
	AllocsPerSolve float64 `json:"allocsPerSolve"`
	BytesPerSolve  float64 `json:"bytesPerSolve"`
	Steps          int     `json:"steps"`
	Substeps       int     `json:"substeps"`
	Relaxations    int64   `json:"relaxations"`
}

// engineMatrixReport is the JSON envelope emitted by RunEngineMatrix.
type engineMatrixReport struct {
	Graph    string           `json:"graph"`
	Vertices int              `json:"vertices"`
	Edges    int              `json:"edges"`
	Rho      int              `json:"rho"`
	Trials   int              `json:"trials"`
	Procs    int              `json:"procs"`
	Rows     []EngineBenchRow `json:"rows"`
}

// AllEngineNames lists the five engines in framework order.
func AllEngineNames() []string {
	return []string{"sequential", "parallel", "flat", "delta", "rho"}
}

// RunEngineMatrix builds one preprocessed solver and times every
// requested engine on it via the per-query override path — the exact
// code path the daemon's ?engine= parameter takes — reporting p50/p90
// solve latency and per-solve allocation counts as JSON.
func RunEngineMatrix(w io.Writer, cfg EngineMatrixConfig) error {
	if cfg.Trials <= 0 {
		cfg.Trials = 9
	}
	if cfg.Rho == 0 {
		cfg.Rho = 32
	}
	engines := cfg.Engines
	if len(engines) == 0 {
		engines = AllEngineNames()
	}
	g, err := rs.GenerateByName(cfg.Gen, cfg.N, cfg.Seed)
	if err != nil {
		return err
	}
	if cfg.Weights > 0 {
		g = rs.WithUniformIntWeights(g, 1, cfg.Weights, cfg.Seed+1)
	}
	solver, err := rs.NewSolver(g, rs.Options{Rho: cfg.Rho})
	if err != nil {
		return err
	}
	n := g.NumVertices()

	report := engineMatrixReport{
		Graph:    cfg.Gen,
		Vertices: n,
		Edges:    g.NumEdges(),
		Rho:      cfg.Rho,
		Trials:   cfg.Trials,
		Procs:    runtime.GOMAXPROCS(0),
	}
	for _, name := range engines {
		eng, err := rs.ParseEngine(name)
		if err != nil {
			return err
		}
		// Warm the workspace pool so the timed loop measures steady
		// state, not first-solve buffer growth.
		var lastStats rs.Stats
		if _, lastStats, err = solver.DistancesWith(0, eng); err != nil {
			return fmt.Errorf("engine %s: %v", name, err)
		}

		durs := make([]float64, cfg.Trials)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := 0; i < cfg.Trials; i++ {
			src := rs.Vertex((i * 7919) % n)
			t0 := time.Now()
			_, st, err := solver.DistancesWith(src, eng)
			durs[i] = float64(time.Since(t0).Microseconds())
			if err != nil {
				return fmt.Errorf("engine %s: %v", name, err)
			}
			lastStats = st
		}
		runtime.ReadMemStats(&after)
		sort.Float64s(durs)

		report.Rows = append(report.Rows, EngineBenchRow{
			Engine:         name,
			P50Micros:      durs[len(durs)/2],
			P90Micros:      durs[len(durs)*9/10],
			AllocsPerSolve: float64(after.Mallocs-before.Mallocs) / float64(cfg.Trials),
			BytesPerSolve:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.Trials),
			Steps:          lastStats.Steps,
			Substeps:       lastStats.Substeps,
			Relaxations:    lastStats.Relaxations,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
