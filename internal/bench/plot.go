package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// AsciiPlot renders series as a log-log scatter plot in plain text, so
// the paper's figures are visible directly in a terminal: each series
// gets a distinct marker, axes are annotated with the data range.
// Points with non-positive coordinates are skipped (log scale).
func AsciiPlot(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	markers := []byte("*o+x#@%&")
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		fmt.Fprintf(w, "%s: no positive data to plot\n", title)
		return
	}
	lx0, lx1 := math.Log(minX), math.Log(maxX)
	ly0, ly1 := math.Log(minY), math.Log(maxY)
	if lx1 == lx0 {
		lx1 = lx0 + 1
	}
	if ly1 == ly0 {
		ly1 = ly0 + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			col := int(math.Round((math.Log(s.X[i]) - lx0) / (lx1 - lx0) * float64(width-1)))
			row := int(math.Round((math.Log(s.Y[i]) - ly0) / (ly1 - ly0) * float64(height-1)))
			row = height - 1 - row // origin at bottom-left
			if grid[row][col] != ' ' && grid[row][col] != m {
				grid[row][col] = '?' // overlapping series
			} else {
				grid[row][col] = m
			}
		}
	}
	fmt.Fprintf(w, "%s  (log-log)\n", title)
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%-10.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%-10.3g", minY)
		}
		fmt.Fprintf(w, "%s|%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s+\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-10.3g%s%10.3g\n", strings.Repeat(" ", 11), minX,
		strings.Repeat(" ", max(0, width-20)), maxX)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(w, "%s%s\n\n", strings.Repeat(" ", 11), strings.Join(legend, "  "))
}
