package radiusstep_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// CLI smoke tests: build each command once into a temp dir and exercise
// its main flag paths end to end.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI builds take a few seconds")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "radiusstep-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"radius-bench", "sssp", "graphgen", "graphpack", "ssspd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				_ = out
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIBenchList(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "radius-bench", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"table4", "fig3", "ablation-k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in list:\n%s", want, out)
		}
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "radius-bench", "-exp", "fig1", "-scale", "tiny")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "# done in") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Unknown experiment and scale fail with nonzero status.
	if _, err := runCLI(t, dir, "radius-bench", "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := runCLI(t, dir, "radius-bench", "-scale", "nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestCLISsspAlgorithms(t *testing.T) {
	dir := buildCLIs(t)
	for _, algo := range []string{"radius", "dijkstra", "delta", "bellmanford", "bfs"} {
		out, err := runCLI(t, dir, "sssp",
			"-gen", "grid2d", "-n", "400", "-weights", "100", "-algo", algo, "-verify")
		if err != nil {
			t.Fatalf("%s: %v\n%s", algo, err, out)
		}
		if algo != "bfs" && !strings.Contains(out, "certificate OK") {
			t.Fatalf("%s: not verified:\n%s", algo, out)
		}
		if !strings.Contains(out, "reached") {
			t.Fatalf("%s: missing summary:\n%s", algo, out)
		}
	}
	if _, err := runCLI(t, dir, "sssp", "-gen", "bogus"); err == nil {
		t.Fatal("bogus generator accepted")
	}
	if _, err := runCLI(t, dir, "sssp"); err == nil {
		t.Fatal("missing -gen/-in accepted")
	}
	// Unknown heuristic/engine names must fail loudly, not silently map
	// to the zero value.
	if _, err := runCLI(t, dir, "sssp", "-gen", "grid2d", "-n", "100", "-heuristic", "typo"); err == nil {
		t.Fatal("bogus -heuristic accepted")
	}
	if _, err := runCLI(t, dir, "sssp", "-gen", "grid2d", "-n", "100", "-engine", "typo"); err == nil {
		t.Fatal("bogus -engine accepted")
	}
}

func TestCLISsspdSelftest(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "ssspd",
		"-graph", "tiny=gen=grid2d,n=400,weights=100,rho=8",
		"-selftest", "-selftest-queries", "60", "-selftest-clients", "4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"selftest graph=tiny", "failures=0", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in selftest report:\n%s", want, out)
		}
	}
	if _, err := runCLI(t, dir, "ssspd", "-graph", "bad=gen=nope,n=10"); err == nil {
		t.Fatal("bogus graph spec accepted")
	}
	if _, err := runCLI(t, dir, "ssspd"); err == nil {
		t.Fatal("serving with no graphs accepted")
	}
}

func TestCLIGraphgenAndSsspFile(t *testing.T) {
	dir := buildCLIs(t)
	gpath := filepath.Join(dir, "g.txt")
	out, err := runCLI(t, dir, "graphgen", "-kind", "web", "-n", "500", "-weights", "50", "-o", gpath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote web") {
		t.Fatalf("graphgen summary missing:\n%s", out)
	}
	out, err = runCLI(t, dir, "sssp", "-in", gpath, "-algo", "radius", "-rho", "8", "-verify")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "certificate OK") {
		t.Fatalf("file-based solve not verified:\n%s", out)
	}
	// Binary output round-trips through size report only (sssp reads text).
	out, err = runCLI(t, dir, "graphgen", "-kind", "grid2d", "-n", "100", "-binary", "-o", filepath.Join(dir, "g.bin"))
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}

// The production cold-start pipeline: generate a DIMACS file, pack it
// into a snapshot (preprocessing paid once), then serve it — ssspd must
// report the radii came from the snapshot, not a startup preprocess.
func TestCLIGraphpackSnapshotColdStart(t *testing.T) {
	dir := buildCLIs(t)
	gr := filepath.Join(dir, "pack.gr")
	out, err := runCLI(t, dir, "graphgen", "-kind", "grid2d", "-n", "900", "-weights", "100", "-format", "dimacs", "-o", gr)
	if err != nil {
		t.Fatalf("graphgen: %v\n%s", err, out)
	}
	snap := filepath.Join(dir, "pack.snap")
	out, err = runCLI(t, dir, "graphpack", "-in", gr, "-rho", "8", "-o", snap)
	if err != nil {
		t.Fatalf("graphpack: %v\n%s", err, out)
	}
	for _, want := range []string{"(dimacs)", "radii=yes", "wrote " + snap} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in graphpack summary:\n%s", want, out)
		}
	}
	out, err = runCLI(t, dir, "ssspd", "-graph", "packed=snapshot="+snap,
		"-selftest", "-selftest-queries", "40", "-selftest-clients", "4")
	if err != nil {
		t.Fatalf("ssspd: %v\n%s", err, out)
	}
	for _, want := range []string{"radii=snapshot", "failures=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in ssspd output:\n%s", want, out)
		}
	}
	// sssp also ingests the snapshot (and the DIMACS file) directly.
	out, err = runCLI(t, dir, "sssp", "-in", snap, "-algo", "radius", "-rho", "8", "-verify")
	if err != nil || !strings.Contains(out, "certificate OK") {
		t.Fatalf("sssp on snapshot: %v\n%s", err, out)
	}
	// Re-packing a snapshot with new parameters recovers the true
	// original graph (not the augmented one) before preprocessing again.
	out, err = runCLI(t, dir, "graphpack", "-in", snap, "-rho", "4", "-o", filepath.Join(dir, "repack.snap"))
	if err != nil || !strings.Contains(out, "(snapshot)") {
		t.Fatalf("re-pack failed: %v\n%s", err, out)
	}
	// The 30×30 grid has exactly 1740 edges; seeing that count proves
	// the re-pack loaded the original, not the augmented graph.
	if !strings.Contains(out, "n=900 m=1740") {
		t.Fatalf("re-pack did not start from the original graph:\n%s", out)
	}
	// Preprocessing knobs on a packed snapshot must fail loudly.
	if _, err := runCLI(t, dir, "ssspd", "-graph", "p=snapshot="+snap+",rho=16", "-selftest"); err == nil {
		t.Fatal("baked-in rho override accepted")
	}
	// graphpack refuses ambiguous or incomplete invocations.
	if _, err := runCLI(t, dir, "graphpack", "-in", gr); err == nil {
		t.Fatal("missing -o accepted")
	}
	if _, err := runCLI(t, dir, "graphpack", "-in", gr, "-gen", "road", "-o", snap); err == nil {
		t.Fatal("both -in and -gen accepted")
	}
}
