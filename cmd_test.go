package radiusstep_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// CLI smoke tests: build each command once into a temp dir and exercise
// its main flag paths end to end.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI builds take a few seconds")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "radiusstep-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"radius-bench", "sssp", "graphgen", "ssspd"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				cliErr = err
				_ = out
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIBenchList(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "radius-bench", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"table4", "fig3", "ablation-k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in list:\n%s", want, out)
		}
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "radius-bench", "-exp", "fig1", "-scale", "tiny")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "# done in") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Unknown experiment and scale fail with nonzero status.
	if _, err := runCLI(t, dir, "radius-bench", "-exp", "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := runCLI(t, dir, "radius-bench", "-scale", "nope"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestCLISsspAlgorithms(t *testing.T) {
	dir := buildCLIs(t)
	for _, algo := range []string{"radius", "dijkstra", "delta", "bellmanford", "bfs"} {
		out, err := runCLI(t, dir, "sssp",
			"-gen", "grid2d", "-n", "400", "-weights", "100", "-algo", algo, "-verify")
		if err != nil {
			t.Fatalf("%s: %v\n%s", algo, err, out)
		}
		if algo != "bfs" && !strings.Contains(out, "certificate OK") {
			t.Fatalf("%s: not verified:\n%s", algo, out)
		}
		if !strings.Contains(out, "reached") {
			t.Fatalf("%s: missing summary:\n%s", algo, out)
		}
	}
	if _, err := runCLI(t, dir, "sssp", "-gen", "bogus"); err == nil {
		t.Fatal("bogus generator accepted")
	}
	if _, err := runCLI(t, dir, "sssp"); err == nil {
		t.Fatal("missing -gen/-in accepted")
	}
	// Unknown heuristic/engine names must fail loudly, not silently map
	// to the zero value.
	if _, err := runCLI(t, dir, "sssp", "-gen", "grid2d", "-n", "100", "-heuristic", "typo"); err == nil {
		t.Fatal("bogus -heuristic accepted")
	}
	if _, err := runCLI(t, dir, "sssp", "-gen", "grid2d", "-n", "100", "-engine", "typo"); err == nil {
		t.Fatal("bogus -engine accepted")
	}
}

func TestCLISsspdSelftest(t *testing.T) {
	dir := buildCLIs(t)
	out, err := runCLI(t, dir, "ssspd",
		"-graph", "tiny=gen=grid2d,n=400,weights=100,rho=8",
		"-selftest", "-selftest-queries", "60", "-selftest-clients", "4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"selftest graph=tiny", "failures=0", "p50=", "p99="} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in selftest report:\n%s", want, out)
		}
	}
	if _, err := runCLI(t, dir, "ssspd", "-graph", "bad=gen=nope,n=10"); err == nil {
		t.Fatal("bogus graph spec accepted")
	}
	if _, err := runCLI(t, dir, "ssspd"); err == nil {
		t.Fatal("serving with no graphs accepted")
	}
}

func TestCLIGraphgenAndSsspFile(t *testing.T) {
	dir := buildCLIs(t)
	gpath := filepath.Join(dir, "g.txt")
	out, err := runCLI(t, dir, "graphgen", "-kind", "web", "-n", "500", "-weights", "50", "-o", gpath)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "wrote web") {
		t.Fatalf("graphgen summary missing:\n%s", out)
	}
	out, err = runCLI(t, dir, "sssp", "-in", gpath, "-algo", "radius", "-rho", "8", "-verify")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "certificate OK") {
		t.Fatalf("file-based solve not verified:\n%s", out)
	}
	// Binary output round-trips through size report only (sssp reads text).
	out, err = runCLI(t, dir, "graphgen", "-kind", "grid2d", "-n", "100", "-binary", "-o", filepath.Join(dir, "g.bin"))
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
}
