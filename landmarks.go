package radiusstep

import (
	"fmt"
	"math"

	"radiusstep/internal/core"
	"radiusstep/internal/landmark"
)

// LandmarkStrategy selects how BuildLandmarks picks landmark vertices.
type LandmarkStrategy = landmark.Strategy

const (
	// LandmarksFarthest is farthest-point selection: each landmark
	// maximizes the distance to its nearest predecessor, spreading the
	// set to the periphery (and across components). The ALT default.
	LandmarksFarthest = landmark.Farthest
	// LandmarksDegree picks the k highest-degree vertices — hubs that
	// lie on many shortest paths of scale-free graphs.
	LandmarksDegree = landmark.Degree
)

// MaxLandmarks caps a solver's landmark set; bound queries cost O(k)
// per relaxation candidate on the prune hot path.
const MaxLandmarks = landmark.MaxLandmarks

// ParseLandmarkStrategy maps a strategy name (farthest, degree) to its
// value; typos fail loudly.
func ParseLandmarkStrategy(name string) (LandmarkStrategy, error) {
	return landmark.ParseStrategy(name)
}

// BuildLandmarks selects k landmarks with the given strategy and
// solves a full distance vector from each, replacing any existing set.
// It returns the number of landmarks built (less than k only when the
// graph has fewer vertices). The solves run on the solver's configured
// engine; the Θ(k) full solves are the price that later Route queries
// amortize. Safe to call concurrently with queries: in-flight solves
// keep the set they loaded.
func (s *Solver) BuildLandmarks(k int, strat LandmarkStrategy) (int, error) {
	s.lmMu.Lock()
	defer s.lmMu.Unlock()
	set, err := landmark.Build(s.pre.Graph, k, strat, func(src Vertex) ([]float64, error) {
		d, _, err := s.DistancesWith(src, EngineAuto)
		return d, err
	})
	if err != nil {
		return 0, err
	}
	s.lm.Store(set)
	return set.K(), nil
}

// AdoptLandmark promotes an already-computed full distance vector —
// typically a serving cache entry — into the landmark set, making the
// cache double as an ALT index for free. dist must be src's exact full
// distance vector on this solver's metric (dist[src] == 0, no negative
// or NaN entries; +Inf marks unreachable vertices). It reports whether
// the vector was adopted: false with a nil error when src is already a
// landmark or the set is full (both expected in steady state), an
// error only for an invalid vector. The vector is copied; the caller's
// slice is not retained.
func (s *Solver) AdoptLandmark(src Vertex, dist []float64) (bool, error) {
	s.lmMu.Lock()
	defer s.lmMu.Unlock()
	set := s.lm.Load()
	if set == nil {
		var err error
		if set, err = landmark.New(s.pre.Graph.NumVertices()); err != nil {
			return false, err
		}
	}
	if set.K() >= MaxLandmarks || set.Has(src) {
		return false, nil
	}
	next, err := set.With(src, dist)
	if err != nil {
		return false, err
	}
	s.lm.Store(next)
	return true, nil
}

// Landmarks reports the number of landmarks currently serving Route
// queries.
func (s *Solver) Landmarks() int { return s.lm.Load().K() }

// LandmarkVertices returns the landmark vertex ids in insertion order
// (nil when no landmarks exist).
func (s *Solver) LandmarkVertices() []Vertex { return s.lm.Load().Vertices() }

// LandmarkData exports the landmark set for persistence: the vertex
// ids and a landmark-major matrix (rows[i*n : (i+1)*n] is landmark i's
// full distance vector), the layout Snapshot carries. Both are nil
// when no landmarks exist.
func (s *Solver) LandmarkData() ([]Vertex, []float64) {
	set := s.lm.Load()
	if set.K() == 0 {
		return nil, nil
	}
	return set.Vertices(), set.Rows()
}

// SetLandmarkData restores a landmark set exported by LandmarkData
// (SolverFromSnapshot calls this for snapshots packed with
// graphpack -landmarks), replacing any existing set. Passing no
// vertices clears the set.
func (s *Solver) SetLandmarkData(verts []Vertex, rows []float64) error {
	s.lmMu.Lock()
	defer s.lmMu.Unlock()
	set, err := landmark.FromRows(s.pre.Graph.NumVertices(), verts, rows)
	if err != nil {
		return err
	}
	s.lm.Store(set)
	return nil
}

// LandmarkBound returns an admissible lower bound on d(v, t) from the
// landmark set (0 without landmarks or information; +Inf when a
// landmark certifies different components).
func (s *Solver) LandmarkBound(v, t Vertex) float64 {
	return s.lm.Load().LowerBound(v, t)
}

// Route answers a point-to-point query: the shortest path src..dst as
// a vertex sequence over real (non-shortcut) edges, its length, and
// the solve's round statistics. It returns (nil, +Inf) when dst is
// unreachable. engine overrides the solve engine per query (EngineAuto
// means the early-terminating sequential engine, matching Path).
//
// When prune is true and the solver has landmarks, the solve is
// goal-directed: relaxations whose optimistic total (via the ALT
// triangle lower bound) cannot beat the best known bound on d(src,
// dst) are skipped — Stats.Pruned counts them — and a landmark
// certifying that dst is unreachable from src short-circuits the solve
// entirely. The returned distance is byte-identical to the unpruned
// solve's; only the work differs. Without landmarks, prune is a no-op.
func (s *Solver) Route(src, dst Vertex, engine Engine, prune bool) ([]Vertex, float64, Stats, error) {
	path, d, st, _, err := s.route(src, dst, engine, prune, nil)
	return path, d, st, err
}

// route is Route plus the partial distance vector (for callers that
// reuse it — tests) and an optional cancellation probe (RouteCtx).
func (s *Solver) route(src, dst Vertex, engine Engine, prune bool, probe *core.Probe) ([]Vertex, float64, Stats, []float64, error) {
	kind := core.KindSequential
	if engine != EngineAuto {
		var err error
		if kind, err = engineKind(engine); err != nil {
			return nil, 0, Stats{}, nil, err
		}
	}
	params := s.params
	params.Probe = probe
	n := s.pre.Graph.NumVertices()
	if prune && src >= 0 && int(src) < n && dst >= 0 && int(dst) < n {
		if lm := s.lm.Load(); lm.K() > 0 {
			if math.IsInf(lm.LowerBound(src, dst), 1) {
				// A landmark reaches exactly one endpoint: src and dst
				// are in different components, no solve needed.
				return nil, math.Inf(1), Stats{Engine: kind.String()}, nil, nil
			}
			params.Bound = lm.BoundTo(dst)
			params.UpperBound = lm.Estimate(src, dst)
		}
	}
	ws := s.getWS()
	d, dist, st, err := core.SolveKindTarget(s.pre.Graph, s.pre.Radii, src, dst, kind, params, ws)
	s.putWS(ws)
	if err != nil {
		return nil, 0, Stats{}, nil, err
	}
	if math.IsInf(d, 1) {
		return nil, d, st, dist, nil
	}
	path, err := s.walkBack(dist, src, dst)
	if err != nil {
		return nil, 0, Stats{}, nil, err
	}
	return path, d, st, dist, nil
}

// PathFromDistances reconstructs the shortest path src..dst from an
// already-computed exact distance vector for src (a full solve's
// output — the serving daemon uses this to answer route queries from
// its distance cache without a solve). It returns (nil, +Inf, nil)
// when dst is unreachable. The vector must be src's full distance
// vector on this solver's graph; a vector from another source or graph
// yields an error (no tight predecessor), not a wrong path.
func (s *Solver) PathFromDistances(src, dst Vertex, dist []float64) ([]Vertex, float64, error) {
	n := s.pre.Graph.NumVertices()
	if len(dist) != n {
		return nil, 0, fmt.Errorf("radiusstep: %d distances for %d vertices", len(dist), n)
	}
	if src < 0 || int(src) >= n {
		return nil, 0, fmt.Errorf("radiusstep: source %d out of range [0,%d)", src, n)
	}
	if dst < 0 || int(dst) >= n {
		return nil, 0, fmt.Errorf("radiusstep: target %d out of range [0,%d)", dst, n)
	}
	if dist[src] != 0 {
		return nil, 0, fmt.Errorf("radiusstep: dist[%d] = %v, want 0 (vector not for this source?)", src, dist[src])
	}
	d := dist[dst]
	if math.IsInf(d, 1) {
		return nil, d, nil
	}
	path, err := s.walkBack(dist, src, dst)
	if err != nil {
		return nil, 0, err
	}
	return path, d, nil
}
