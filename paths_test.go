package radiusstep_test

import (
	"bytes"
	"math"
	"testing"

	rs "radiusstep"
)

func solverOn(t *testing.T, g *rs.Graph, rho int) *rs.Solver {
	t.Helper()
	s, err := rs.NewSolver(g, rs.Options{Rho: rho})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTreeParentsAreTight(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 1)
	s := solverOn(t, g, 8)
	dist, parent, _, err := s.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	if parent[0] != 0 {
		t.Fatal("source parent must be itself")
	}
	aug := s.Preprocessed().Graph
	for v := 1; v < g.NumVertices(); v++ {
		p := parent[v]
		if p < 0 {
			t.Fatalf("vertex %d unreachable in connected graph", v)
		}
		// Parent edges live in the augmented graph (shortcuts allowed)
		// and must be tight.
		w, err := rs.PathLength(aug, []rs.Vertex{p, rs.Vertex(v)})
		if err != nil {
			t.Fatalf("parent edge missing: %v", err)
		}
		if dist[p]+w != dist[v] {
			t.Fatalf("parent edge not tight at %d", v)
		}
	}
}

func TestTreeDeterministicAcrossEngines(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.ScaleFree(600, 4, 2), 1, 1000, 3)
	pre, err := rs.Preprocess(g, rs.Options{Rho: 12})
	if err != nil {
		t.Fatal(err)
	}
	var ref []rs.Vertex
	for _, e := range []rs.Engine{rs.EngineSequential, rs.EngineParallel, rs.EngineFlat} {
		s, err := rs.NewSolverPre(pre, e)
		if err != nil {
			t.Fatal(err)
		}
		_, parent, _, err := s.Tree(3)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = parent
			continue
		}
		for v := range parent {
			if parent[v] != ref[v] {
				t.Fatalf("%v: parent[%d] = %d, ref %d", e, v, parent[v], ref[v])
			}
		}
	}
}

func TestPathToWalksTree(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(10, 10), 1, 50, 4)
	s := solverOn(t, g, 6)
	dist, parent, _, err := s.Tree(0)
	if err != nil {
		t.Fatal(err)
	}
	path := rs.PathTo(parent, 99)
	if len(path) < 2 || path[0] != 0 || path[len(path)-1] != 99 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	// Its length in the augmented graph must equal the distance.
	length, err := rs.PathLength(s.Preprocessed().Graph, path)
	if err != nil {
		t.Fatal(err)
	}
	if length != dist[99] {
		t.Fatalf("path length %v != dist %v", length, dist[99])
	}
	if rs.PathTo(parent, -1) != nil {
		t.Fatal("negative dst should give nil")
	}
}

func TestDistanceEarlyTermination(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(60, 60), 1, 100, 5)
	s := solverOn(t, g, 16)
	full := rs.Dijkstra(g, 0)
	// Near target: should settle in far fewer steps than the full solve.
	d, stNear, err := s.Distance(0, 61) // adjacent diagonal area
	if err != nil {
		t.Fatal(err)
	}
	if d != full[61] {
		t.Fatalf("near distance %v, want %v", d, full[61])
	}
	_, stFull, err := s.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	if stNear.Steps >= stFull.Steps {
		t.Fatalf("early termination did not help: %d vs %d steps", stNear.Steps, stFull.Steps)
	}
	// Far target: still exact.
	dFar, _, err := s.Distance(0, 3599)
	if err != nil {
		t.Fatal(err)
	}
	if dFar != full[3599] {
		t.Fatalf("far distance %v, want %v", dFar, full[3599])
	}
}

func TestDistanceSourceAndUnreachable(t *testing.T) {
	b := rs.NewBuilder(4)
	b.Add(0, 1, 2)
	g := b.Build()
	s := solverOn(t, g, 2)
	if d, _, err := s.Distance(0, 0); err != nil || d != 0 {
		t.Fatalf("self distance = %v, %v", d, err)
	}
	d, _, err := s.Distance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Fatalf("unreachable distance = %v", d)
	}
	if _, _, err := s.Distance(0, 9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestPathMatchesDijkstra(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.RandomConnected(300, 900, 6), 1, 30, 7)
	s := solverOn(t, g, 10)
	full := rs.Dijkstra(g, 5)
	for _, dst := range []rs.Vertex{0, 42, 123, 299} {
		path, d, err := s.Path(5, dst)
		if err != nil {
			t.Fatal(err)
		}
		if d != full[dst] {
			t.Fatalf("dst %d: length %v, want %v", dst, d, full[dst])
		}
		if path[0] != 5 || path[len(path)-1] != dst {
			t.Fatalf("dst %d: endpoints wrong", dst)
		}
		// Paths are reconstructed over the ORIGINAL graph: every hop is
		// a real edge and the weights sum to the distance.
		length, err := rs.PathLength(g, path)
		if err != nil {
			t.Fatal(err)
		}
		if length != d {
			t.Fatalf("dst %d: edge sum %v != %v", dst, length, d)
		}
	}
}

func TestPathUnreachable(t *testing.T) {
	b := rs.NewBuilder(3)
	b.Add(0, 1, 1)
	g := b.Build()
	s := solverOn(t, g, 2)
	path, d, err := s.Path(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if path != nil || !math.IsInf(d, 1) {
		t.Fatalf("unreachable path = %v, %v", path, d)
	}
}

func TestPathLengthErrors(t *testing.T) {
	g := rs.Grid2D(3, 3)
	if _, err := rs.PathLength(g, []rs.Vertex{0, 8}); err == nil {
		t.Fatal("non-adjacent hop accepted")
	}
	if l, err := rs.PathLength(g, []rs.Vertex{4}); err != nil || l != 0 {
		t.Fatal("single-vertex path should be 0")
	}
}

func TestPreprocessedRoundTrip(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(15, 15), 1, 500, 8)
	pre, err := rs.Preprocess(g, rs.Options{Rho: 10, K: 2, Heuristic: rs.HeuristicDP})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WritePreprocessed(&buf, pre); err != nil {
		t.Fatal(err)
	}
	got, err := rs.ReadPreprocessed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Added != pre.Added || got.Visited != pre.Visited || got.EdgesScanned != pre.EdgesScanned {
		t.Fatal("counters changed in round trip")
	}
	if got.Original == nil || got.Original.NumEdges() != g.NumEdges() {
		t.Fatal("original graph lost in round trip")
	}
	for i := range pre.Radii {
		if got.Radii[i] != pre.Radii[i] {
			t.Fatalf("radii differ at %d", i)
		}
	}
	// The reloaded bundle answers queries identically.
	want := rs.Dijkstra(g, 7)
	s, err := rs.NewSolverPre(got, rs.EngineSequential)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := s.Distances(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("reloaded solver wrong at %d", i)
		}
	}
}

func TestReadPreprocessedRejectsCorruption(t *testing.T) {
	g := rs.Grid2D(5, 5)
	pre, err := rs.Preprocess(g, rs.Options{Rho: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rs.WritePreprocessed(&buf, pre); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncations at several boundaries.
	for _, cut := range []int{0, 4, 16, len(raw) / 2, len(raw) - 3} {
		if _, err := rs.ReadPreprocessed(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := rs.ReadPreprocessed(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt radii (negative). The header is 6 uint64 fields; the first
	// radius follows.
	bad2 := append([]byte(nil), raw...)
	bad2[6*8+7] = 0xff // sign bit of first radius
	if _, err := rs.ReadPreprocessed(bytes.NewReader(bad2)); err == nil {
		t.Fatal("negative radius accepted")
	}
	// Writing a broken bundle fails fast.
	if err := rs.WritePreprocessed(&bytes.Buffer{}, &rs.Preprocessed{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}
