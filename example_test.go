package radiusstep_test

import (
	"fmt"

	rs "radiusstep"
)

// The basic workflow: build a graph, preprocess once, query distances.
func ExampleNewSolver() {
	// A 4-vertex path: 0 -1- 1 -2- 2 -3- 3.
	b := rs.NewBuilder(4)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	b.Add(2, 3, 3)
	g := b.Build()

	solver, err := rs.NewSolver(g, rs.Options{Rho: 2})
	if err != nil {
		panic(err)
	}
	dist, _, err := solver.Distances(0)
	if err != nil {
		panic(err)
	}
	fmt.Println(dist)
	// Output: [0 1 3 6]
}

// Point-to-point queries stop as soon as the destination settles.
func ExampleSolver_Path() {
	g := rs.Grid2D(3, 3) // unit-weight 3x3 grid, vertex = row*3+col
	solver, err := rs.NewSolver(g, rs.Options{Rho: 4})
	if err != nil {
		panic(err)
	}
	path, d, err := solver.Path(0, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(path)-1, d)
	// Output: 4 4
}

// Radius-stepping with r(v)=0 degenerates to Dijkstra with batched ties;
// with r(v)=∞ it degenerates to Bellman–Ford. Custom radii are allowed —
// correctness holds for any non-negative values (Theorem 3.1).
func ExampleSolveWithRadii() {
	b := rs.NewBuilder(3)
	b.Add(0, 1, 5)
	b.Add(1, 2, 5)
	b.Add(0, 2, 20)
	g := b.Build()

	dist, stats, err := rs.SolveWithRadii(g, []float64{0, 0, 0}, 0, rs.EngineSequential)
	if err != nil {
		panic(err)
	}
	// Two steps: one per distinct distance class (5, then 10).
	fmt.Println(dist, stats.Steps)
	// Output: [0 5 10] 2
}

// Dijkstra is the sequential baseline; VerifyDistances is an
// independent optimality certificate.
func ExampleDijkstra() {
	g := rs.WithUniformIntWeights(rs.Grid2D(10, 10), 1, 100, 42)
	dist := rs.Dijkstra(g, 0)
	if err := rs.VerifyDistances(g, 0, dist); err != nil {
		panic(err)
	}
	fmt.Println("verified")
	// Output: verified
}

// Preprocessing can be persisted and reloaded, paying the Θ(nρ²) phase
// once across processes.
func ExamplePreprocess() {
	g := rs.Grid2D(5, 5)
	pre, err := rs.Preprocess(g, rs.Options{Rho: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(pre.Radii), pre.Graph.NumVertices())
	// Output: 25 25
}
