package radiusstep_test

import (
	"math"
	"testing"

	rs "radiusstep"
)

// TestDistancesSteadyStateAllocs is the allocation-regression gate: on
// the sequential engine with a warmed workspace pool, a Distances call
// allocates O(1) — essentially just the returned vector. The graph is
// kept under the parallel primitives' sequential-fallback grain so no
// goroutines (which allocate) are spawned. CI runs this test by name.
func TestDistancesSteadyStateAllocs(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 3)
	s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: rs.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool: first solves grow the workspace buffers.
	for i := 0; i < 3; i++ {
		if _, _, err := s.Distances(rs.Vertex(i)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := s.Distances(7); err != nil {
			t.Fatal(err)
		}
	})
	// 1 alloc for the result vector plus a little slack for the runtime;
	// the pre-workspace implementation allocated O(n) slices per solve.
	if allocs > 4 {
		t.Fatalf("steady-state Distances allocates %v objects per solve, want <= 4", allocs)
	}
}

// TestEngineSteadyStateAllocs extends the allocation gate to the
// engines rebuilt on the ordered-frontier substrate: with a warmed
// workspace pool, the parallel (Algorithm 2) and rho engines must also
// solve in O(1) allocations — the frontier's runs, staging batches and
// rank-query scratch all live in the pooled workspace arena. Before the
// substrate landed, the parallel engine allocated one treap node per
// insert (~500k allocs per 50k-vertex solve). The graph is kept under
// the parallel primitives' sequential-fallback grain so no goroutines
// (which allocate) are spawned. CI runs this test by name.
func TestEngineSteadyStateAllocs(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 3)
	for _, tc := range []struct {
		engine rs.Engine
		budget float64
	}{
		{rs.EngineParallel, 8},
		{rs.EngineRho, 8},
	} {
		s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: tc.engine})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := s.Distances(rs.Vertex(i)); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, st, err := s.Distances(7); err != nil || st.Engine != tc.engine.String() {
				t.Fatalf("engine %v: stats %v err %v", tc.engine, st.Engine, err)
			}
		})
		if allocs > tc.budget {
			t.Fatalf("steady-state %v Distances allocates %v objects per solve, want <= %v",
				tc.engine, allocs, tc.budget)
		}
	}
}

// TestDistancesWithOverride: every per-query override returns identical
// distances and reports its engine in the stats.
func TestDistancesWithOverride(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(16, 16), 1, 60, 9)
	s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: rs.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	want := rs.Dijkstra(g, 5)
	overrides := map[rs.Engine]string{
		rs.EngineAuto:       "sequential", // no override: solver's engine
		rs.EngineSequential: "sequential",
		rs.EngineParallel:   "parallel",
		rs.EngineFlat:       "flat",
		rs.EngineDelta:      "delta",
		rs.EngineRho:        "rho",
	}
	for eng, name := range overrides {
		dist, st, err := s.DistancesWith(5, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if st.Engine != name {
			t.Fatalf("override %v: Stats.Engine = %q, want %q", eng, st.Engine, name)
		}
		for v := range dist {
			if math.Float64bits(dist[v]) != math.Float64bits(want[v]) {
				t.Fatalf("override %v: dist[%d] = %v, want %v", eng, v, dist[v], want[v])
			}
		}
	}
	if _, _, err := s.DistancesWith(5, rs.Engine(42)); err == nil {
		t.Fatal("invalid engine override accepted")
	}
}

// TestDistancesBatchHonorsEngine is the regression test for the batch
// path silently ignoring the solver's configured engine (it always ran
// the sequential reference): the framework now reports which engine ran
// in each Stats, so the contract is directly observable.
func TestDistancesBatchHonorsEngine(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(14, 14), 1, 40, 4)
	sources := []rs.Vertex{0, 5, 60}
	oracle := make([][]float64, len(sources))
	for i, src := range sources {
		oracle[i] = rs.Dijkstra(g, src)
	}
	for _, tc := range []struct {
		engine rs.Engine
		want   string
	}{
		{rs.EngineAuto, "sequential"}, // auto batch = source-level parallelism
		{rs.EngineSequential, "sequential"},
		{rs.EngineFlat, "flat"},
		{rs.EngineDelta, "delta"},
		{rs.EngineRho, "rho"},
	} {
		s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: tc.engine})
		if err != nil {
			t.Fatal(err)
		}
		dists, stats, err := s.DistancesBatch(sources)
		if err != nil {
			t.Fatalf("%v: %v", tc.engine, err)
		}
		for i := range sources {
			if stats[i].Engine != tc.want {
				t.Fatalf("engine %v: batch solve %d ran %q, want %q", tc.engine, i, stats[i].Engine, tc.want)
			}
			for v := range dists[i] {
				if math.Float64bits(dists[i][v]) != math.Float64bits(oracle[i][v]) {
					t.Fatalf("engine %v source %d: dist[%d] = %v, want %v", tc.engine, sources[i], v, dists[i][v], oracle[i][v])
				}
			}
		}
	}
}

// TestOptionsValidation: negative knobs and out-of-range enums must be
// rejected with a clear error instead of slipping past setDefaults.
func TestOptionsValidation(t *testing.T) {
	g := rs.Grid2D(4, 4)
	bad := []rs.Options{
		{Rho: -1},
		{K: -3},
		{Delta: -0.5},
		{Delta: math.NaN()},
		{Engine: rs.Engine(99)},
		{Engine: rs.Engine(-2)},
		{Heuristic: rs.Heuristic(17)},
	}
	for i, opt := range bad {
		if _, err := rs.NewSolver(g, opt); err == nil {
			t.Fatalf("case %d: NewSolver accepted %+v", i, opt)
		}
		if _, err := rs.Preprocess(g, opt); err == nil {
			t.Fatalf("case %d: Preprocess accepted %+v", i, opt)
		}
	}
	if _, err := rs.NewSolver(g, rs.Options{}); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	if _, err := rs.NewSolverPre(nil, rs.EngineAuto); err == nil {
		t.Fatal("nil preprocessed accepted")
	}
}

// TestSnapshotSolverRhoQuota: a snapshot-loaded solver must answer
// engine=rho queries with the persisted ρ as its quota, matching the
// step structure of an in-process solver preprocessed with the same ρ
// (regression: the snapshot path used to fall back to the default 32).
func TestSnapshotSolverRhoQuota(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(18, 18), 1, 80, 2)
	s1, err := rs.NewSolver(g, rs.Options{Rho: 4})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := rs.NewSnapshot(s1.Preprocessed(), rs.Options{Rho: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rs.SolverFromSnapshot(snap, rs.EngineRho)
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := s1.DistancesWith(0, rs.EngineRho)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := s2.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Engine != "rho" {
		t.Fatalf("snapshot solver ran %q", st2.Engine)
	}
	if st1.Steps != st2.Steps {
		t.Fatalf("rho-quota lost through snapshot: %d steps in-process vs %d from snapshot", st1.Steps, st2.Steps)
	}
}

// TestPathWithEngines: point-to-point queries agree across engines.
func TestPathWithEngines(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(12, 12), 1, 30, 6)
	s, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatal(err)
	}
	wantPath, wantD, err := s.Path(0, 143)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantPath) == 0 {
		t.Fatal("no default path")
	}
	for _, eng := range []rs.Engine{rs.EngineParallel, rs.EngineFlat, rs.EngineDelta, rs.EngineRho} {
		path, d, err := s.PathWith(0, 143, eng)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if d != wantD {
			t.Fatalf("%v: distance %v, want %v", eng, d, wantD)
		}
		if got, err := rs.PathLength(g, path); err != nil || got != wantD {
			t.Fatalf("%v: path length %v (%v), want %v", eng, got, err, wantD)
		}
	}
}
