package radiusstep

import (
	"context"

	"radiusstep/internal/core"
)

// Cancellation errors returned by the context-aware query methods
// (DistancesCtx, RouteCtx) when the context ends before the solve
// completes. They alias the core sentinels so errors.Is works across
// layers; the serving daemon maps them onto distinct HTTP statuses.
var (
	// ErrCanceled reports a solve aborted because its context was
	// canceled (the caller went away).
	ErrCanceled = core.ErrCanceled
	// ErrDeadline reports a solve aborted because its context's deadline
	// expired.
	ErrDeadline = core.ErrDeadline
)

// probeForContext wires a context onto a cooperative-cancellation probe:
// when ctx ends, the probe fires with the matching cause (Expire for
// DeadlineExceeded, Cancel otherwise) and the in-flight solve unwinds at
// its next poll. The returned stop releases the watcher; callers must
// invoke it once the solve returns (a deferred stop is fine — it is
// idempotent and cheap).
//
// A context that can never end (ctx.Done() == nil, e.g.
// context.Background) yields a nil probe, keeping the solve on the
// probe-free zero-overhead path with no allocation at all.
func probeForContext(ctx context.Context) (*core.Probe, func()) {
	if ctx.Done() == nil {
		return nil, func() {}
	}
	p := new(core.Probe)
	fire := func() {
		if ctx.Err() == context.DeadlineExceeded {
			p.Expire()
		} else {
			p.Cancel()
		}
	}
	if ctx.Err() != nil {
		// Already over: latch the cause now so the solve aborts before
		// its first step.
		fire()
		return p, func() {}
	}
	stop := context.AfterFunc(ctx, fire)
	return p, func() { stop() }
}

// DistancesCtx is DistancesWith under a context: the solve aborts
// cooperatively — at the next step, substep, or ~8k-arc poll — when ctx
// is canceled or its deadline expires, returning ErrCanceled or
// ErrDeadline (match with errors.Is). A context that cannot end keeps
// the query on the identical zero-overhead path as DistancesWith; the
// pooled workspace stays valid either way.
func (s *Solver) DistancesCtx(ctx context.Context, src Vertex, engine Engine) ([]float64, Stats, error) {
	kind, err := engineKind(s.resolve(engine))
	if err != nil {
		return nil, Stats{}, err
	}
	probe, stop := probeForContext(ctx)
	defer stop()
	params := s.params
	params.Probe = probe
	ws := s.getWS()
	d, st, err := core.SolveKind(s.pre.Graph, s.pre.Radii, src, kind, params, ws)
	s.putWS(ws)
	return d, st, err
}

// RouteCtx is Route under a context, with the same cooperative-abort
// semantics as DistancesCtx: ErrCanceled/ErrDeadline when ctx ends
// before the target settles.
func (s *Solver) RouteCtx(ctx context.Context, src, dst Vertex, engine Engine, prune bool) ([]Vertex, float64, Stats, error) {
	probe, stop := probeForContext(ctx)
	defer stop()
	path, d, st, _, err := s.route(src, dst, engine, prune, probe)
	return path, d, st, err
}
