package radiusstep_test

import (
	"testing"

	rs "radiusstep"
)

// TestTracingDisabledAllocGate is the observability layer's core
// promise, stated as a test: threading the trace recorder through the
// stepping driver must not cost untraced solves anything. A traced
// solve runs first (it allocates freely — timeline slices, clock
// reads), then untraced solves on the same solver must still meet the
// same steady-state allocation budget the pre-tracing implementation
// held. CI runs this test by name next to the other alloc gates.
func TestTracingDisabledAllocGate(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 3)
	for _, tc := range []struct {
		engine rs.Engine
		budget float64
	}{
		{rs.EngineSequential, 4},
		{rs.EngineParallel, 8},
		{rs.EngineRho, 8},
	} {
		s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: tc.engine})
		if err != nil {
			t.Fatal(err)
		}
		// A traced solve first: its recorder and timeline must leave no
		// residue in the pooled workspaces the untraced path reuses.
		if _, _, tl, err := s.DistancesTraced(0, rs.EngineAuto); err != nil || tl == nil || tl.Steps == 0 {
			t.Fatalf("engine %v: traced solve tl=%v err=%v", tc.engine, tl, err)
		}
		for i := 0; i < 3; i++ {
			if _, _, err := s.Distances(rs.Vertex(i)); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, _, err := s.Distances(7); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > tc.budget {
			t.Fatalf("engine %v: untraced solve allocates %v objects after tracing landed, want <= %v",
				tc.engine, allocs, tc.budget)
		}
	}
}
