// Benchmarks regenerating every table and figure of the paper, plus
// micro-benchmarks of the solvers and substrates.
//
// Each BenchmarkTableN / BenchmarkFigN runs the corresponding experiment
// (results are memoized inside internal/bench, so additional b.N
// iterations hit the cache) and prints the rendered rows once, so
//
//	go test -bench=. -benchmem
//
// emits the same rows/series the paper reports. Scale defaults to
// "default" (~minutes for the whole suite); override with
// RADIUS_BENCH_SCALE=tiny|default|full.
package radiusstep_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	rs "radiusstep"
	"radiusstep/internal/bench"
)

func benchScale(b *testing.B) bench.Scale {
	name := os.Getenv("RADIUS_BENCH_SCALE")
	if name == "" {
		name = "default"
	}
	sc, err := bench.ScaleByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

var printedMu sync.Mutex
var printed = map[string]bool{}

func benchExperiment(b *testing.B, id string) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := bench.RunExperiment(&buf, id, sc); err != nil {
			b.Fatal(err)
		}
		printedMu.Lock()
		if !printed[id] {
			printed[id] = true
			fmt.Printf("\n%s", buf.String())
		}
		printedMu.Unlock()
	}
}

// --- one benchmark per paper artifact ------------------------------------

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { benchExperiment(b, "table7") }

// --- ablations ------------------------------------------------------------

func BenchmarkAblationK(b *testing.B)           { benchExperiment(b, "ablation-k") }
func BenchmarkAblationDelta(b *testing.B)       { benchExperiment(b, "ablation-delta") }
func BenchmarkAblationEngines(b *testing.B)     { benchExperiment(b, "ablation-engines") }
func BenchmarkAblationModels(b *testing.B)      { benchExperiment(b, "ablation-models") }
func BenchmarkAblationParallelism(b *testing.B) { benchExperiment(b, "ablation-parallelism") }

// --- solver micro-benchmarks ----------------------------------------------

type fixture struct {
	g    *rs.Graph
	unit *rs.Graph
	pre  *rs.Preprocessed
	src  rs.Vertex
}

var (
	fixOnce sync.Once
	fix     fixture
)

// solverFixture prepares one mid-size weighted road-like graph with ρ=64
// preprocessing, shared by the solver micro-benchmarks.
func solverFixture(b *testing.B) *fixture {
	fixOnce.Do(func() {
		raw, _ := rs.LargestComponent(rs.RoadNet(60000, 6, 7))
		fix.g = rs.WithUniformIntWeights(raw, 1, 10000, 8)
		fix.unit = rs.UnitWeights(raw)
		pre, err := rs.Preprocess(fix.g, rs.Options{Rho: 64})
		if err != nil {
			panic(err)
		}
		fix.pre = pre
		fix.src = 11
	})
	if fix.g == nil {
		b.Fatal("fixture failed")
	}
	return &fix
}

func BenchmarkDijkstra(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Dijkstra(f.g, f.src)
	}
}

func BenchmarkRadiusStepSequential(b *testing.B) {
	f := solverFixture(b)
	s, err := rs.NewSolverPre(f.pre, rs.EngineSequential)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Distances(f.src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadiusStepParallel(b *testing.B) {
	f := solverFixture(b)
	s, err := rs.NewSolverPre(f.pre, rs.EngineParallel)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Distances(f.src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadiusStepFlat(b *testing.B) {
	f := solverFixture(b)
	s, err := rs.NewSolverPre(f.pre, rs.EngineFlat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Distances(f.src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.DeltaStepping(f.g, f.src, 2000)
	}
}

func BenchmarkBellmanFord(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.BellmanFord(f.g, f.src)
	}
}

func BenchmarkBFSParallel(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.BFSParallel(f.unit, f.src)
	}
}

func BenchmarkPreprocessRho16(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Preprocess(f.g, rs.Options{Rho: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreprocessRho64DP(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Preprocess(f.g, rs.Options{Rho: 64, K: 3, Heuristic: rs.HeuristicDP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadiiOnlyRho64(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Radii(f.g, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistancesBatch8(b *testing.B) {
	f := solverFixture(b)
	s, err := rs.NewSolverPre(f.pre, rs.EngineSequential)
	if err != nil {
		b.Fatal(err)
	}
	sources := make([]rs.Vertex, 8)
	for i := range sources {
		sources[i] = rs.Vertex(i * 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DistancesBatch(sources); err != nil {
			b.Fatal(err)
		}
	}
}

// Locality ablation: vertex order matters for CSR traversals. Random-
// geometric graphs come with effectively random ids; BFS reordering
// places neighborhoods together.
func BenchmarkDijkstraNaturalOrder(b *testing.B) {
	f := solverFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Dijkstra(f.g, f.src)
	}
}

func BenchmarkDijkstraBFSOrder(b *testing.B) {
	f := solverFixture(b)
	g2, perm := rs.ReorderBFS(f.g, f.src)
	src := perm[f.src]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Dijkstra(g2, src)
	}
}
