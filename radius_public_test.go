package radiusstep_test

import (
	"bytes"
	"math"
	"testing"

	rs "radiusstep"
)

func TestSolverEndToEnd(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(30, 30), 1, 500, 1)
	s, err := rs.NewSolver(g, rs.Options{Rho: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := rs.Dijkstra(g, 0)
	for _, engine := range []rs.Engine{rs.EngineSequential, rs.EngineParallel, rs.EngineFlat} {
		s2, err := rs.NewSolverPre(s.Preprocessed(), engine)
		if err != nil {
			t.Fatal(err)
		}
		dist, st, err := s2.Distances(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dist[i] != want[i] {
				t.Fatalf("%v: dist[%d] = %v, want %v", engine, i, dist[i], want[i])
			}
		}
		if err := rs.VerifyDistances(g, 0, dist); err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		if st.Steps < 1 {
			t.Fatalf("%v: no steps", engine)
		}
	}
}

func TestSolverDefaults(t *testing.T) {
	g := rs.Grid2D(10, 10)
	s, err := rs.NewSolver(g, rs.Options{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := s.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[99] != 18 { // manhattan distance on unit grid
		t.Fatalf("corner distance = %v, want 18", dist[99])
	}
}

func TestSolverHeuristics(t *testing.T) {
	g := rs.ScaleFree(500, 4, 2)
	want := rs.Dijkstra(g, 5)
	for _, h := range []rs.Heuristic{rs.HeuristicDirect, rs.HeuristicGreedy, rs.HeuristicDP} {
		s, err := rs.NewSolver(g, rs.Options{Rho: 10, K: 3, Heuristic: h})
		if err != nil {
			t.Fatal(err)
		}
		dist, _, err := s.Distances(5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dist[i] != want[i] {
				t.Fatalf("heuristic %v: wrong distance at %d", h, i)
			}
		}
	}
}

func TestPreprocessExposesCounters(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 3)
	pre, err := rs.Preprocess(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Added <= 0 || pre.Visited <= 0 || pre.EdgesScanned <= 0 {
		t.Fatalf("counters not populated: %+v", pre)
	}
	if pre.Graph.NumEdges() <= g.NumEdges() {
		t.Fatal("no shortcuts materialized")
	}
	if len(pre.Radii) != g.NumVertices() {
		t.Fatal("radii length wrong")
	}
}

func TestRadiiOnly(t *testing.T) {
	g := rs.Grid2D(10, 10)
	radii, err := rs.Radii(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if radii[55] != 1 { // interior vertex: 4 neighbors at distance 1 -> 5th closest (incl self) at 1
		t.Fatalf("r_5 interior = %v, want 1", radii[55])
	}
}

func TestSolveWithRadiiCustom(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(12, 12), 1, 50, 4)
	want := rs.Dijkstra(g, 7)
	radii := make([]float64, g.NumVertices())
	for i := range radii {
		radii[i] = float64(i % 5)
	}
	for _, e := range []rs.Engine{rs.EngineSequential, rs.EngineParallel, rs.EngineFlat} {
		dist, _, err := rs.SolveWithRadii(g, radii, 7, e)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if dist[i] != want[i] {
				t.Fatalf("%v: mismatch at %d", e, i)
			}
		}
	}
}

func TestDistancesTrace(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(10, 10), 1, 20, 5)
	s, err := rs.NewSolver(g, rs.Options{Rho: 4})
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	_, st, err := s.DistancesTrace(0, func(rs.StepTrace) { steps++ })
	if err != nil {
		t.Fatal(err)
	}
	if steps != st.Steps {
		t.Fatalf("trace count %d != steps %d", steps, st.Steps)
	}
}

func TestGraphRoundTripPublic(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.RandomConnected(50, 120, 6), 1, 10, 7)
	var buf bytes.Buffer
	if err := rs.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := rs.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatal("round trip changed the graph")
	}
	var bin bytes.Buffer
	if err := rs.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g3, err := rs.ReadGraphBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumArcs() != g.NumArcs() {
		t.Fatal("binary round trip changed the graph")
	}
}

func TestBuilderPublic(t *testing.T) {
	b := rs.NewBuilder(3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 3)
	g := b.Build()
	dist := rs.Dijkstra(g, 0)
	if dist[2] != 5 {
		t.Fatalf("dist[2] = %v", dist[2])
	}
	if err := rs.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesPublic(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(15, 15), 1, 30, 8)
	want := rs.Dijkstra(g, 0)
	bf, rounds := rs.BellmanFord(g, 0)
	if rounds < 2 {
		t.Fatal("implausible BF rounds")
	}
	ds, st := rs.DeltaStepping(g, 0, 40)
	if st.Steps < 1 {
		t.Fatal("implausible delta steps")
	}
	for i := range want {
		if bf[i] != want[i] || ds[i] != want[i] {
			t.Fatalf("baseline mismatch at %d", i)
		}
	}
	hops, levels := rs.BFS(rs.UnitWeights(g), 0)
	if levels != 28 || hops[224] != 28 {
		t.Fatalf("bfs levels = %d, corner = %d", levels, hops[224])
	}
	phops, plevels := rs.BFSParallel(rs.UnitWeights(g), 0)
	if plevels != levels || phops[224] != hops[224] {
		t.Fatal("parallel BFS disagrees")
	}
}

func TestNewSolverPreRejectsBadInput(t *testing.T) {
	if _, err := rs.NewSolverPre(nil, rs.EngineAuto); err == nil {
		t.Fatal("nil accepted")
	}
	g := rs.Grid2D(5, 5)
	bad := &rs.Preprocessed{Graph: g, Radii: make([]float64, 3)}
	if _, err := rs.NewSolverPre(bad, rs.EngineAuto); err == nil {
		t.Fatal("mismatched radii accepted")
	}
}

func TestEngineString(t *testing.T) {
	for _, e := range []rs.Engine{rs.EngineAuto, rs.EngineSequential, rs.EngineParallel, rs.EngineFlat} {
		if e.String() == "" {
			t.Fatal("empty engine name")
		}
	}
	if rs.Engine(42).String() == "" {
		t.Fatal("unknown engine should still print")
	}
}

func TestUnreachablePublic(t *testing.T) {
	b := rs.NewBuilder(4)
	b.Add(0, 1, 1)
	g := b.Build()
	s, err := rs.NewSolver(g, rs.Options{Rho: 2})
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := s.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[3], 1) {
		t.Fatal("unreachable should be +Inf")
	}
}

func TestGenerateByName(t *testing.T) {
	for _, kind := range []string{"grid2d", "grid3d", "road", "web", "er", "rmat", "smallworld", "comb"} {
		g, err := rs.GenerateByName(kind, 400, 5)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.NumVertices() < 4 || g.NumEdges() < 3 {
			t.Fatalf("%s: degenerate graph n=%d m=%d", kind, g.NumVertices(), g.NumEdges())
		}
		if err := rs.Validate(g); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := rs.GenerateByName("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestReorderPreservesMetric(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.ScaleFree(400, 4, 6), 1, 100, 7)
	want := rs.Dijkstra(g, 0)
	for name, reorder := range map[string]func(*rs.Graph) (*rs.Graph, []rs.Vertex){
		"bfs":    func(g *rs.Graph) (*rs.Graph, []rs.Vertex) { return rs.ReorderBFS(g, 0) },
		"degree": rs.ReorderByDegree,
	} {
		g2, perm := reorder(g)
		got := rs.Dijkstra(g2, perm[0])
		expect := rs.PermuteFloats(want, perm)
		for v := range expect {
			if got[v] != expect[v] {
				t.Fatalf("%s: distance mismatch at %d", name, v)
			}
		}
		// Radius-stepping agrees on the relabeled graph too.
		s, err := rs.NewSolver(g2, rs.Options{Rho: 8})
		if err != nil {
			t.Fatal(err)
		}
		dist, _, err := s.Distances(perm[0])
		if err != nil {
			t.Fatal(err)
		}
		for v := range expect {
			if dist[v] != expect[v] {
				t.Fatalf("%s: solver mismatch at %d", name, v)
			}
		}
	}
}

func TestDistancesBatch(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 50, 9)
	s, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatal(err)
	}
	sources := []rs.Vertex{0, 7, 100, 399}
	dists, stats, err := s.DistancesBatch(sources)
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 4 || len(stats) != 4 {
		t.Fatal("batch sizes wrong")
	}
	for i, src := range sources {
		want := rs.Dijkstra(g, src)
		for v := range want {
			if dists[i][v] != want[v] {
				t.Fatalf("src %d: mismatch at %d", src, v)
			}
		}
		if stats[i].Steps < 1 {
			t.Fatalf("src %d: no steps", src)
		}
	}
	if _, _, err := s.DistancesBatch([]rs.Vertex{0, 99999}); err == nil {
		t.Fatal("bad source accepted")
	}
	if d, st, err := s.DistancesBatch(nil); err != nil || len(d) != 0 || len(st) != 0 {
		t.Fatal("empty batch should be fine")
	}
}

func TestRhoClamped(t *testing.T) {
	g := rs.Grid2D(3, 3)
	// Rho far beyond n must not crash; the ball is the whole graph.
	s, err := rs.NewSolver(g, rs.Options{Rho: 100000})
	if err != nil {
		t.Fatal(err)
	}
	dist, st, err := s.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	if dist[8] != 4 {
		t.Fatalf("corner = %v", dist[8])
	}
	if st.Steps != 1 {
		// Whole graph in every ball: a single step settles everything.
		t.Fatalf("steps = %d, want 1", st.Steps)
	}
}

func TestCombPublic(t *testing.T) {
	g := rs.Comb(5)
	if !rs.IsConnected(g) {
		t.Fatal("comb disconnected")
	}
	lc, ids := rs.LargestComponent(g)
	if lc.NumVertices() != g.NumVertices() || len(ids) != g.NumVertices() {
		t.Fatal("largest component of connected graph should be identity")
	}
}
