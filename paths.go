package radiusstep

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"radiusstep/internal/core"
	"radiusstep/internal/graph"
)

// Tree computes the shortest-path distances from src together with a
// deterministic shortest-path tree (parent[src] == src, -1 for
// unreachable vertices). The tree derivation is one parallel pass over
// the arcs and is identical for every engine.
func (s *Solver) Tree(src Vertex) (dist []float64, parent []Vertex, stats Stats, err error) {
	dist, stats, err = s.Distances(src)
	if err != nil {
		return nil, nil, Stats{}, err
	}
	parent = core.ShortestPathTree(s.pre.Graph, src, dist)
	return dist, parent, stats, nil
}

// Distance answers a point-to-point query with early termination: the
// solve stops as soon as dst is settled (Theorem 3.1 guarantees settled
// distances are exact), which on large graphs explores only the ball of
// radius d(src, dst). When the solver has landmarks the solve is
// additionally goal-directed (see Route); the distance is identical
// either way. It returns +Inf when dst is unreachable.
func (s *Solver) Distance(src, dst Vertex) (float64, Stats, error) {
	kind := core.KindSequential
	params := s.params
	n := s.pre.Graph.NumVertices()
	if src >= 0 && int(src) < n && dst >= 0 && int(dst) < n {
		if lm := s.lm.Load(); lm.K() > 0 {
			if math.IsInf(lm.LowerBound(src, dst), 1) {
				return math.Inf(1), Stats{Engine: kind.String()}, nil
			}
			params.Bound = lm.BoundTo(dst)
			params.UpperBound = lm.Estimate(src, dst)
		}
	}
	ws := s.getWS()
	d, _, st, err := core.SolveKindTarget(s.pre.Graph, s.pre.Radii, src, dst, kind, params, ws)
	s.putWS(ws)
	return d, st, err
}

// Path returns the shortest path src..dst as a vertex sequence and its
// length, or (nil, +Inf) when unreachable. It runs an early-terminated
// solve on the sequential engine and walks tight edges back from dst.
// When the preprocessing bundle retains the original graph the walk uses
// only real (non-shortcut) edges, so the route is directly usable;
// otherwise shortcut edges (whose weights equal exact distances) may
// appear.
func (s *Solver) Path(src, dst Vertex) ([]Vertex, float64, error) {
	return s.PathWith(src, dst, EngineAuto)
}

// PathWith is Path with a per-query engine override (EngineAuto means
// the default early-terminating sequential engine). Every engine
// supports early termination — the settled-set-is-exact invariant is
// strategy-independent — so the route and its length are identical
// across engines; only the exploration order differs. When the solver
// has landmarks the solve is goal-directed (Route with pruning on);
// pass prune=false to Route to opt out.
func (s *Solver) PathWith(src, dst Vertex, engine Engine) ([]Vertex, float64, error) {
	path, d, _, err := s.Route(src, dst, engine, true)
	return path, d, err
}

// walkBack reconstructs the path src..dst by walking tight edges of a
// distance vector backward from dst. All vertices on a shortest path
// to dst are settled by a target solve (their distances are <= d(dst)
// and exact — goal-directed pruning never skips a relaxation on such a
// path), and the original graph realizes the same metric as the
// augmented one, so a tight predecessor always exists in it and the
// route uses only real (non-shortcut) edges whenever the bundle
// retains the original graph. Ties break toward the smaller distance,
// then the smaller vertex id, so the route is deterministic.
func (s *Solver) walkBack(dist []float64, src, dst Vertex) ([]Vertex, error) {
	walk := s.pre.Graph
	if s.pre.Original != nil {
		walk = s.pre.Original
	}
	path := []Vertex{dst}
	cur := dst
	for cur != src {
		if len(path) > walk.NumVertices() {
			// Zero-weight cycles could make the tight-edge walk
			// oscillate; a simple path never exceeds n vertices.
			return nil, fmt.Errorf("radiusstep: path reconstruction cycled at %d (zero-weight cycle?)", cur)
		}
		adj, ws := walk.Neighbors(cur)
		next := Vertex(-1)
		for i, u := range adj {
			if !math.IsInf(dist[u], 1) && dist[u]+ws[i] == dist[cur] && u != cur {
				if next == -1 || dist[u] < dist[next] || (dist[u] == dist[next] && u < next) {
					next = u
				}
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("radiusstep: internal: no tight predecessor at %d", cur)
		}
		path = append(path, next)
		cur = next
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// PathTo reconstructs the vertex sequence from a Tree parent array.
// It returns nil when dst is unreachable.
func PathTo(parent []Vertex, dst Vertex) []Vertex {
	return core.PathTo(parent, dst)
}

// PathLength sums the weights along a vertex path in g, returning an
// error if two consecutive vertices are not adjacent.
func PathLength(g *Graph, path []Vertex) (float64, error) {
	var total float64
	for i := 1; i < len(path); i++ {
		w, ok := graph.EdgeWeight(g, path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("radiusstep: path edge (%d,%d) not in graph", path[i-1], path[i])
		}
		total += w
	}
	return total, nil
}

// --- preprocessing persistence -------------------------------------------

// preMagic identifies the preprocessed-bundle format.
const preMagic = uint64(0x5052455052503031) // "PREPRP01"

// WritePreprocessed persists a preprocessing result (augmented graph,
// original graph when present, radii, counters) so the Θ(nρ²) phase can
// be paid once and reloaded across processes.
func WritePreprocessed(w io.Writer, pre *Preprocessed) error {
	if pre == nil || pre.Graph == nil || len(pre.Radii) != pre.Graph.NumVertices() {
		return fmt.Errorf("radiusstep: invalid preprocessed bundle")
	}
	bw := bufio.NewWriter(w)
	hasOrig := uint64(0)
	if pre.Original != nil {
		hasOrig = 1
	}
	head := []uint64{preMagic, uint64(len(pre.Radii)), uint64(pre.Added), uint64(pre.Visited), uint64(pre.EdgesScanned), hasOrig}
	for _, h := range head {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, pre.Radii); err != nil {
		return err
	}
	if err := graph.WriteBinary(bw, pre.Graph); err != nil {
		return err
	}
	if hasOrig == 1 {
		if err := graph.WriteBinary(bw, pre.Original); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPreprocessed loads a bundle written by WritePreprocessed.
func ReadPreprocessed(r io.Reader) (*Preprocessed, error) {
	br := bufio.NewReader(r)
	var head [6]uint64
	for i := range head {
		if err := binary.Read(br, binary.LittleEndian, &head[i]); err != nil {
			return nil, err
		}
	}
	if head[0] != preMagic {
		return nil, fmt.Errorf("radiusstep: bad preprocessed magic %#x", head[0])
	}
	n := head[1]
	if n > 1<<34 {
		return nil, fmt.Errorf("radiusstep: implausible vertex count %d", n)
	}
	if head[5] > 1 {
		return nil, fmt.Errorf("radiusstep: corrupt original-graph flag %d", head[5])
	}
	pre := &Preprocessed{
		Radii:        make([]float64, n),
		Added:        int64(head[2]),
		Visited:      int64(head[3]),
		EdgesScanned: int64(head[4]),
	}
	if err := binary.Read(br, binary.LittleEndian, pre.Radii); err != nil {
		return nil, err
	}
	g, err := graph.ReadBinary(br)
	if err != nil {
		return nil, err
	}
	if g.NumVertices() != int(n) {
		return nil, fmt.Errorf("radiusstep: radii/graph size mismatch")
	}
	for _, rad := range pre.Radii {
		if rad < 0 || math.IsNaN(rad) {
			return nil, fmt.Errorf("radiusstep: corrupt radii")
		}
	}
	pre.Graph = g
	if head[5] == 1 {
		orig, err := graph.ReadBinary(br)
		if err != nil {
			return nil, err
		}
		if orig.NumVertices() != int(n) {
			return nil, fmt.Errorf("radiusstep: original graph size mismatch")
		}
		pre.Original = orig
	}
	return pre, nil
}
