package radiusstep_test

import (
	"fmt"
	"sync"
	"testing"

	rs "radiusstep"
)

// TestIntegrationMatrix drives the full pipeline — generate, preprocess,
// solve, verify — across graph families, options, and engines. Every
// result is checked against the SSSP optimality certificate (not just
// another implementation).
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is a few seconds")
	}
	graphs := map[string]*rs.Graph{
		"grid2d-w": rs.WithUniformIntWeights(rs.Grid2D(25, 25), 1, 10000, 1),
		"grid3d-w": rs.WithUniformIntWeights(rs.Grid3D(8, 8, 8), 1, 100, 2),
		"road-w": func() *rs.Graph {
			g, _ := rs.LargestComponent(rs.RoadNet(1500, 6, 3))
			return rs.WithUniformIntWeights(g, 1, 1000, 4)
		}(),
		"web-u":  rs.ScaleFree(800, 5, 5),
		"comb-u": rs.Comb(7),
		"er-w":   rs.WithUniformIntWeights(rs.RandomConnected(600, 1800, 6), 1, 50, 7),
	}
	options := []rs.Options{
		{Rho: 1},
		{Rho: 8},
		{Rho: 32, K: 2, Heuristic: rs.HeuristicGreedy},
		{Rho: 32, K: 3, Heuristic: rs.HeuristicDP},
	}
	engines := []rs.Engine{rs.EngineSequential, rs.EngineParallel, rs.EngineFlat}
	for gname, g := range graphs {
		want := rs.Dijkstra(g, 0)
		for oi, opt := range options {
			pre, err := rs.Preprocess(g, opt)
			if err != nil {
				t.Fatalf("%s opt%d: %v", gname, oi, err)
			}
			for _, e := range engines {
				s, err := rs.NewSolverPre(pre, e)
				if err != nil {
					t.Fatal(err)
				}
				dist, st, err := s.Distances(0)
				if err != nil {
					t.Fatalf("%s opt%d %v: %v", gname, oi, e, err)
				}
				if err := rs.VerifyDistances(g, 0, dist); err != nil {
					t.Fatalf("%s opt%d %v: certificate: %v", gname, oi, e, err)
				}
				for i := range want {
					if dist[i] != want[i] {
						t.Fatalf("%s opt%d %v: dist[%d] = %v, want %v", gname, oi, e, i, dist[i], want[i])
					}
				}
				if opt.K > 0 && st.MaxSubsteps > opt.K+2 {
					t.Fatalf("%s opt%d %v: substeps %d exceed k+2", gname, oi, e, st.MaxSubsteps)
				}
			}
		}
	}
}

// TestIntegrationDeterminism: same inputs, same seeds — identical
// distances AND identical step/substep counts across repeated runs and
// across engines (the synchronous-substep design guarantees this).
func TestIntegrationDeterminism(t *testing.T) {
	build := func() (*rs.Graph, *rs.Preprocessed) {
		g := rs.WithUniformIntWeights(rs.ScaleFree(2000, 5, 11), 1, 10000, 12)
		pre, err := rs.Preprocess(g, rs.Options{Rho: 24, K: 2, Heuristic: rs.HeuristicDP})
		if err != nil {
			t.Fatal(err)
		}
		return g, pre
	}
	_, preA := build()
	_, preB := build()
	if preA.Added != preB.Added {
		t.Fatalf("preprocessing not deterministic: %d vs %d added", preA.Added, preB.Added)
	}
	if preA.Graph.NumEdges() != preB.Graph.NumEdges() {
		t.Fatal("augmented graphs differ")
	}
	type run struct {
		steps, substeps int
		d17             float64
	}
	results := map[string]run{}
	for _, e := range []rs.Engine{rs.EngineSequential, rs.EngineParallel, rs.EngineFlat} {
		for trial := 0; trial < 3; trial++ {
			s, err := rs.NewSolverPre(preA, e)
			if err != nil {
				t.Fatal(err)
			}
			dist, st, err := s.Distances(9)
			if err != nil {
				t.Fatal(err)
			}
			r := run{st.Steps, st.Substeps, dist[17]}
			key := "all"
			if prev, ok := results[key]; ok && prev != r {
				t.Fatalf("%v trial %d: %+v differs from %+v", e, trial, r, prev)
			}
			results[key] = r
		}
	}
}

// TestIntegrationConcurrentQueries: one Solver must serve many
// concurrent Distances calls correctly (each call owns its state).
func TestIntegrationConcurrentQueries(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(40, 40), 1, 500, 21)
	s, err := rs.NewSolver(g, rs.Options{Rho: 16})
	if err != nil {
		t.Fatal(err)
	}
	sources := []rs.Vertex{0, 1, 40, 99, 555, 1234, 1599}
	want := make(map[rs.Vertex][]float64, len(sources))
	for _, src := range sources {
		want[src] = rs.Dijkstra(g, src)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(sources)*4)
	for rep := 0; rep < 4; rep++ {
		for _, src := range sources {
			wg.Add(1)
			go func(src rs.Vertex) {
				defer wg.Done()
				dist, _, err := s.Distances(src)
				if err != nil {
					errs <- err
					return
				}
				for i := range dist {
					if dist[i] != want[src][i] {
						errs <- fmt.Errorf("src %d: mismatch at %d", src, i)
						return
					}
				}
			}(src)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIntegrationManySources mirrors the amortization story: preprocess
// once, query every 50th vertex, verify each.
func TestIntegrationManySources(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(30, 30), 1, 100, 31)
	s, err := rs.NewSolver(g, rs.Options{Rho: 25})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v += 50 {
		dist, _, err := s.Distances(rs.Vertex(v))
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.VerifyDistances(g, rs.Vertex(v), dist); err != nil {
			t.Fatalf("src %d: %v", v, err)
		}
	}
}
