package radiusstep_test

import (
	"context"
	"errors"
	"testing"
	"time"

	rs "radiusstep"
)

// TestCancelProbeNilAllocGate is the cancellation seam's core promise,
// stated as a test: threading the cancel probe through the driver and
// every relax kernel must not cost probe-free solves anything. A
// context-bearing solve runs first (it allocates its probe and AfterFunc
// watcher freely), then plain solves on the same solver must still meet
// the same steady-state allocation budget the pre-cancellation
// implementation held. A Background context must also stay on the
// zero-extra-allocation path — probeForContext maps it to a nil probe.
// CI runs this test by name next to the other alloc gates.
func TestCancelProbeNilAllocGate(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(20, 20), 1, 100, 3)
	for _, tc := range []struct {
		engine rs.Engine
		budget float64
	}{
		{rs.EngineSequential, 4},
		{rs.EngineParallel, 8},
		{rs.EngineRho, 8},
	} {
		s, err := rs.NewSolver(g, rs.Options{Rho: 8, Engine: tc.engine})
		if err != nil {
			t.Fatal(err)
		}
		// A cancelable solve first: its probe must leave no residue in
		// the pooled workspaces the probe-free path reuses.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		if _, _, err := s.DistancesCtx(ctx, 0, rs.EngineAuto); err != nil {
			t.Fatalf("engine %v: ctx solve: %v", tc.engine, err)
		}
		cancel()
		for i := 0; i < 3; i++ {
			if _, _, err := s.Distances(rs.Vertex(i)); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, _, err := s.Distances(7); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > tc.budget {
			t.Fatalf("engine %v: probe-free solve allocates %v objects after cancellation landed, want <= %v",
				tc.engine, allocs, tc.budget)
		}
		// DistancesCtx with an un-endable context takes the nil-probe
		// path: same budget, no probe or watcher allocation.
		ctxAllocs := testing.AllocsPerRun(50, func() {
			if _, _, err := s.DistancesCtx(context.Background(), 7, rs.EngineAuto); err != nil {
				t.Fatal(err)
			}
		})
		if ctxAllocs > tc.budget {
			t.Fatalf("engine %v: Background-ctx solve allocates %v objects, want <= %v",
				tc.engine, ctxAllocs, tc.budget)
		}
	}
}

func TestDistancesCtxCancellation(t *testing.T) {
	g := rs.WithUniformIntWeights(rs.Grid2D(40, 40), 1, 100, 5)
	s, err := rs.NewSolver(g, rs.Options{Rho: 8})
	if err != nil {
		t.Fatal(err)
	}

	// A live context solves normally and matches the plain path.
	want, _, err := s.Distances(0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.DistancesCtx(context.Background(), 0, rs.EngineAuto)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// A pre-canceled context aborts with ErrCanceled before any work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.DistancesCtx(ctx, 0, rs.EngineAuto); !errors.Is(err, rs.ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}

	// An already-expired deadline aborts with ErrDeadline.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, _, err := s.DistancesCtx(dctx, 0, rs.EngineAuto); !errors.Is(err, rs.ErrDeadline) {
		t.Fatalf("expired ctx: err = %v, want ErrDeadline", err)
	}

	// RouteCtx honors the same semantics.
	if _, _, _, err := s.RouteCtx(ctx, 0, 100, rs.EngineAuto, false); !errors.Is(err, rs.ErrCanceled) {
		t.Fatalf("RouteCtx canceled ctx: err = %v, want ErrCanceled", err)
	}
	path, d, _, err := s.RouteCtx(context.Background(), 0, 100, rs.EngineAuto, false)
	if err != nil || len(path) == 0 || d != want[100] {
		t.Fatalf("RouteCtx live ctx: path=%d d=%v err=%v, want d=%v", len(path), d, err, want[100])
	}
}
